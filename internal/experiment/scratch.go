package experiment

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
	"repro/internal/video"
	"repro/internal/workload"
)

// replayScratch is the per-worker reusable state of a sweep. Every worker
// goroutine owns exactly one, so nothing in it needs locking: the frame pool
// recycles captured frame storage from one repetition into the next, which
// is the bulk of a replay's allocations once the engine and callback paths
// stopped allocating, and the trace slot recycles per-cluster trace series
// across the runs that retain only a profile and a busy curve (the
// oracle-candidate replays).
type replayScratch struct {
	frames   *video.FramePool
	traces   []*trace.ClusterTraces
	sessions map[string]*workload.ReplaySession
}

// session returns the worker's replay session for the workload's SoC spec,
// booting one on first use. Sessions replay the seed-independent warm prefix
// (engine, silicon, app install, service start) exactly once per worker and
// fork every subsequent run off the boot checkpoint — the sweep's dominant
// fixed cost paid once instead of per run. Keying by spec name is sound
// within one sweep: a scratch lives for one worker of one sweep, whose
// workload and recording are fixed, and the oracle's placement-pinned
// sub-specs carry distinct names ("<spec>-<cluster>-only").
func (s *replayScratch) session(w *workload.Workload, rec *workload.Recording) *workload.ReplaySession {
	key := w.Profile.SoCSpec().Name
	sess := s.sessions[key]
	if sess == nil {
		if s.sessions == nil {
			s.sessions = make(map[string]*workload.ReplaySession)
		}
		sess = workload.NewReplaySession(w, rec)
		s.sessions[key] = sess
	}
	return sess
}

// takeTraces hands out the recycled per-cluster traces for the next replay
// (nil on the worker's first candidate run; the device then allocates fresh
// series which come back through releaseTraces).
func (s *replayScratch) takeTraces() []*trace.ClusterTraces {
	t := s.traces
	s.traces = nil
	return t
}

// releaseTraces takes back per-cluster traces no longer referenced by any
// retained artefact. The traces must not be read afterwards.
func (s *replayScratch) releaseTraces(cts []*trace.ClusterTraces) { s.traces = cts }

// pooledWorkload returns the workload with the worker's frame pool installed
// in its device profile (a value copy; the shared workload is untouched).
func (s *replayScratch) pooledWorkload(w *workload.Workload) *workload.Workload {
	wc := *w
	wc.Profile.FramePool = s.frames
	return &wc
}

// release hands a matched video's frames back to the worker pool. The video
// must not be used afterwards.
func (s *replayScratch) release(v *video.Video) { s.frames.Release(v) }

// forEachJob runs jobs [0, n) across at most workers goroutines, handing
// each worker a private replayScratch. fn must be safe to call concurrently
// for distinct job indices and write results only to its own index — the
// same contract the sweeps' pre-sized result slices already rely on for
// deterministic ordering. Compared to the previous goroutine-per-job +
// semaphore fan-out, fixed workers are what make per-worker reuse possible
// at all: scratch lifetime equals worker lifetime, not job lifetime.
func forEachJob(workers, n int, fn func(ji int, scratch *replayScratch)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := &replayScratch{frames: video.NewFramePool()}
			for {
				ji := int(cursor.Add(1)) - 1
				if ji >= n {
					return
				}
				fn(ji, scratch)
			}
		}()
	}
	wg.Wait()
}
