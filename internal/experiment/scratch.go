package experiment

import (
	"context"

	"repro/internal/trace"
	"repro/internal/video"
	"repro/internal/workload"
)

// replayScratch is the per-worker reusable state of a sweep. Every worker
// goroutine owns exactly one at a time, so nothing in it needs locking: the
// frame pool recycles captured frame storage from one repetition into the
// next, which is the bulk of a replay's allocations once the engine and
// callback paths stopped allocating; the trace slot recycles per-cluster
// trace series across the runs that retain only a profile and a busy curve
// (the oracle-candidate replays); and the session registry owns the warmed
// replay sessions, so the boot prefix is paid once per (worker, workload,
// spec) for the scratch's whole lifetime — which, on a long-lived Pool,
// spans every sweep the pool ever executes, not just one.
type replayScratch struct {
	frames   *video.FramePool
	traces   []*trace.ClusterTraces
	sessions *workload.SessionRegistry
	// activeKey is the session key of the warm session the current job is
	// replaying on, "" when the job has not touched a session. The pool's
	// panic recovery uses it to quarantine exactly the possibly-poisoned
	// session and nothing else.
	activeKey string
}

func newReplayScratch() *replayScratch {
	return &replayScratch{
		frames:   video.NewFramePool(),
		sessions: workload.NewSessionRegistry(),
	}
}

// session returns the worker's warm replay session for the workload,
// booting one on first use. Sessions replay the seed-independent warm prefix
// (engine, silicon, app install, service start) exactly once per worker and
// fork every subsequent run off the boot checkpoint — the sweep's dominant
// fixed cost paid once instead of per run. The registry keys by
// workload.SessionKey (workload + spec + idle marker), so one scratch can
// serve many sweeps over different workloads and specs without cross-talk;
// the oracle's placement-pinned sub-specs carry distinct spec names
// ("<spec>-<cluster>-only") and land in their own slots.
func (s *replayScratch) session(w *workload.Workload) *workload.ReplaySession {
	s.activeKey = workload.SessionKey(w)
	return s.sessions.Session(w)
}

// quarantineActive evicts the warm session the current job was using, if
// any — the containment step after a recovered panic. A job that panicked
// before acquiring a session quarantines nothing.
func (s *replayScratch) quarantineActive() {
	if s.activeKey != "" {
		s.sessions.Evict(s.activeKey)
		s.activeKey = ""
	}
}

// takeTraces hands out the recycled per-cluster traces for the next replay
// (nil on the worker's first candidate run; the device then allocates fresh
// series which come back through releaseTraces).
func (s *replayScratch) takeTraces() []*trace.ClusterTraces {
	t := s.traces
	s.traces = nil
	return t
}

// releaseTraces takes back per-cluster traces no longer referenced by any
// retained artefact. The traces must not be read afterwards.
func (s *replayScratch) releaseTraces(cts []*trace.ClusterTraces) { s.traces = cts }

// pooledWorkload returns the workload with the worker's frame pool installed
// in its device profile (a value copy; the shared workload is untouched).
func (s *replayScratch) pooledWorkload(w *workload.Workload) *workload.Workload {
	wc := *w
	wc.Profile.FramePool = s.frames
	return &wc
}

// release hands a matched video's frames back to the worker pool. The video
// must not be used afterwards.
func (s *replayScratch) release(v *video.Video) { s.frames.Release(v) }

// forEachJob runs jobs [0, n) across at most workers goroutines on a
// transient pool — the one-shot form the sustained sweeps use. fn must be
// safe to call concurrently for distinct job indices and write results only
// to its own index — the same contract the sweeps' pre-sized result slices
// already rely on for deterministic ordering.
func forEachJob(workers, n int, fn func(ji int, scratch *replayScratch)) {
	NewPool(workers).run(context.Background(), n, fn, nil)
}
