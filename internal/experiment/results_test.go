package experiment

import (
	"bytes"
	"testing"
)

func TestSummariseAndRoundTrip(t *testing.T) {
	res := quickResult(t, 2)
	s := res.Summarise()
	if s.Workload != "quickstart" || s.Reps != 2 {
		t.Fatalf("summary header: %+v", s)
	}
	if s.BaseOPP == "" {
		t.Fatal("missing oracle base OPP")
	}
	if len(s.Configs) != 17 {
		t.Fatalf("configs = %d", len(s.Configs))
	}
	if s.InputCounts["actual"] != 6 || s.InputCounts["spurious"] != 1 {
		t.Fatalf("input counts: %+v", s.InputCounts)
	}
	for _, cs := range s.Configs {
		if cs.MeanEnergyJ <= 0 || cs.NormEnergy <= 0 {
			t.Fatalf("%s: degenerate energy summary %+v", cs.Name, cs)
		}
		if cs.LagCount != 6 || cs.SpuriousLags != 1 {
			t.Fatalf("%s: lag counts %d/%d", cs.Name, cs.LagCount, cs.SpuriousLags)
		}
	}
	if b, ok := s.LagStats["ondemand"]; !ok || b.N != 12 {
		t.Fatalf("lag stats missing or wrong n: %+v", s.LagStats["ondemand"])
	}

	var buf bytes.Buffer
	if err := WriteSummaries(&buf, []*DatasetResult{res}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSummaries(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Workload != "quickstart" {
		t.Fatalf("round trip: %+v", back)
	}
	if back[0].OracleJ != s.OracleJ {
		t.Fatal("oracle energy lost in round trip")
	}
}

func TestReadSummariesRejectsGarbage(t *testing.T) {
	if _, err := ReadSummaries(bytes.NewBufferString("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}
