package experiment

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// TestSustainedThermalSweep is the acceptance scenario: a sustained
// big.LITTLE export marathon replayed with and without a thermal trip. It
// checks the full thread — cap-down/cap-up events land in the trace, the
// throttled arm of at least one governor loses QoE while its peak
// temperature drops, and the record-only arm never throttles.
func TestSustainedThermalSweep(t *testing.T) {
	w := workload.ExportMarathon()
	w.Profile.SoC = soc.BigLittle44()
	configs := []Config{
		{Name: "performance", OPPIndex: -1,
			NewGovernor: func() governor.Governor { return governor.Performance(power.Snapdragon8074()) }},
		{Name: "interactive", OPPIndex: -1,
			NewGovernor: func() governor.Governor { return governor.NewInteractive() }},
	}
	res, err := RunSustained(w, configs, SustainedOptions{
		Repeats: 3, Reps: 1, Seed: 1,
		Thermal: thermal.PhoneConfig(2, 30, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Runs); got != len(configs)*2 {
		t.Fatalf("%d runs, want %d", got, len(configs)*2)
	}

	// Record-only arms must never cap and must still trace temperatures.
	for _, cfg := range res.Configs {
		for _, r := range res.RunsFor(cfg, false) {
			if r.ThrottleEvents() != 0 {
				t.Fatalf("%s record-only arm has %d throttle events", cfg, r.ThrottleEvents())
			}
			for _, ct := range r.Clusters {
				if ct.Temp.Len() == 0 {
					t.Fatalf("%s record-only arm traced no temperatures for %s", cfg, ct.Name)
				}
			}
		}
	}

	// The performance pin is the hot configuration: its throttled arm must
	// show cap-downs AND cap-ups, degrade QoE, and lower peak temperature.
	hot := res.RunsFor("performance", true)[0]
	big := hot.Clusters[1]
	if big.Throttle.CapDowns() == 0 || big.Throttle.CapUps() == 0 {
		t.Fatalf("throttled performance arm: %d cap-downs, %d cap-ups; want both > 0",
			big.Throttle.CapDowns(), big.Throttle.CapUps())
	}
	if big.Throttle.ThrottledTime(sim.Time(hot.Window)) == 0 {
		t.Fatal("throttled performance arm reports zero throttled time")
	}
	dIrr := res.MeanIrritationS("performance", true) - res.MeanIrritationS("performance", false)
	if dIrr <= 0 {
		t.Fatalf("performance irritation delta %.2fs under throttling, want > 0", dIrr)
	}
	dPeak := res.MeanPeakC("performance", false, 1) - res.MeanPeakC("performance", true, 1)
	if dPeak <= 0 {
		t.Fatalf("performance big-cluster peak rose %.2f°C under throttling, want a drop", -dPeak)
	}

	// With per-core load tracking the interactive governor sees the serial
	// export saturating one big core (max-of-CPUs, not the domain average
	// that read 25% and stayed cold), ramps up, heats the package and pays
	// QoE under throttling just like the pin — the PR 2 ROADMAP note that
	// "only pinned-frequency configs heat the package" is fixed.
	dIrrInt := res.MeanIrritationS("interactive", true) - res.MeanIrritationS("interactive", false)
	if dIrrInt <= 0 {
		t.Fatalf("interactive irritation delta %.2fs under throttling, want > 0 "+
			"(per-core load must let it heat the package)", dIrrInt)
	}
	if d := res.MeanPeakC("interactive", false, 1) - res.MeanPeakC("interactive", true, 1); d <= 0 {
		t.Fatalf("interactive big-cluster peak rose %.2f°C under throttling, want a drop", -d)
	}
	// Unthrottled, the load-based governor still serves QoE: the ramp is
	// fast enough that the sustained export shows no user irritation.
	if irr := res.MeanIrritationS("interactive", false); irr > 1.0 {
		t.Fatalf("unthrottled interactive irritation %.2fs, want ~0", irr)
	}
}

// TestSustainedWorkerPoolDeterminism pins the worker-pool contract: each
// replay owns an independent sim engine, so the sweep must produce
// bit-identical results in (config, arm, rep) order no matter how many
// workers interleave.
func TestSustainedWorkerPoolDeterminism(t *testing.T) {
	sweep := func(workers int) *SustainedResult {
		w := workload.ExportMarathon()
		w.Profile.SoC = soc.BigLittle44()
		configs := []Config{
			{Name: "performance", OPPIndex: -1,
				NewGovernor: func() governor.Governor { return governor.Performance(power.Snapdragon8074()) }},
			{Name: "ondemand", OPPIndex: -1,
				NewGovernor: func() governor.Governor { return governor.NewOndemand() }},
		}
		res, err := RunSustained(w, configs, SustainedOptions{
			Repeats: 2, Reps: 2, Seed: 3, Workers: workers,
			Thermal: thermal.PhoneConfig(2, 30, 5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	serial := sweep(1)
	parallel := sweep(8)
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		a, b := serial.Runs[i], parallel.Runs[i]
		if a.Config != b.Config || a.Throttled != b.Throttled || a.Rep != b.Rep {
			t.Fatalf("run %d ordering differs: (%s,%v,%d) vs (%s,%v,%d)",
				i, a.Config, a.Throttled, a.Rep, b.Config, b.Throttled, b.Rep)
		}
		if a.EnergyJ != b.EnergyJ {
			t.Fatalf("run %d energy differs across pool widths: %v vs %v", i, a.EnergyJ, b.EnergyJ)
		}
		if a.ThrottleEvents() != b.ThrottleEvents() {
			t.Fatalf("run %d throttle events differ: %d vs %d", i, a.ThrottleEvents(), b.ThrottleEvents())
		}
	}
	// Expected order: configs × {record-only, throttled} × reps.
	want := []struct {
		cfg       string
		throttled bool
		rep       int
	}{
		{"performance", false, 0}, {"performance", false, 1},
		{"performance", true, 0}, {"performance", true, 1},
		{"ondemand", false, 0}, {"ondemand", false, 1},
		{"ondemand", true, 0}, {"ondemand", true, 1},
	}
	for i, wnt := range want {
		r := serial.Runs[i]
		if r.Config != wnt.cfg || r.Throttled != wnt.throttled || r.Rep != wnt.rep {
			t.Fatalf("run %d = (%s,%v,%d), want (%s,%v,%d)",
				i, r.Config, r.Throttled, r.Rep, wnt.cfg, wnt.throttled, wnt.rep)
		}
	}
}
