package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/match"
	"repro/internal/oracle"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/workload"
)

// MixedArms lists the heterogeneous per-cluster governor assignments swept on
// two-cluster specs, as {little governor, big governor} name pairs. The set
// covers the axes the big.LITTLE studies care about: which cluster reacts to
// input (interactive placement), asymmetric load policies, and the mixed
// pinned/governed arms where one domain is frozen while the other floats.
var MixedArms = [][2]string{
	{"interactive", "ondemand"},
	{"ondemand", "interactive"},
	{"conservative", "interactive"},
	{"powersave", "interactive"},
	{"interactive", "performance"},
}

// GovernorByName builds a fresh governor instance for one cluster. tbl is the
// cluster's own ladder (used by the pinned powersave/performance arms). An
// unknown name is a returned error, never a panic: governor names are user
// input by the time sweeps run behind flags and HTTP job specs, and a typo
// must fail the one request — a 400 from POST /jobs — not a replay worker.
func GovernorByName(name string, tbl power.Table) (governor.Governor, error) {
	switch name {
	case "conservative":
		return governor.NewConservative(), nil
	case "interactive":
		return governor.NewInteractive(), nil
	case "ondemand":
		return governor.NewOndemand(), nil
	case "powersave":
		return governor.Powersave(tbl), nil
	case "performance":
		return governor.Performance(tbl), nil
	}
	return nil, fmt.Errorf("experiment: unknown governor %q", name)
}

// MatrixConfigs returns the full characterisation matrix for a SoC spec. On
// a single-cluster spec it is exactly the paper's 17 configurations
// (AllConfigs on the one ladder). On a multi-cluster spec it extends the
// paper's matrix to the heterogeneous axes: the fixed-frequency ladder of
// the big (last) cluster — each point pinning every cluster at the lowest
// OPP of its own ladder at or above the label (cpufreq RELATION_L) — the
// three load-based governors applied homogeneously per cluster, and, on
// two-cluster specs, the MixedArms per-cluster assignments named
// "<little governor>/<big governor>".
func MatrixConfigs(spec soc.Spec) []Config {
	bigTbl := spec.Clusters[len(spec.Clusters)-1].Table
	if len(spec.Clusters) == 1 {
		return AllConfigs(bigTbl)
	}
	out := AllConfigs(bigTbl)
	if len(spec.Clusters) != 2 {
		return out
	}
	for _, arm := range MixedArms {
		out = append(out, Config{
			Name:     arm[0] + "/" + arm[1],
			OPPIndex: -1,
			ArmNames: []string{arm[0], arm[1]},
		})
	}
	return out
}

// ValidateSelection checks a config-matrix selection against a spec without
// running anything: every name must exist in MatrixConfigs(spec) or be a
// resolvable "<little>/<big>" mixed arm on a two-cluster spec, and on
// single-cluster specs the selection must keep at least one fixed frequency.
// An empty selection (= full matrix) is always valid. The error is exactly
// what a submission endpoint should echo back as a 400.
func ValidateSelection(spec soc.Spec, names []string) error {
	if len(names) == 0 {
		return nil
	}
	_, err := selectConfigs(spec, MatrixConfigs(spec), names)
	return err
}

// selectConfigs restricts a matrix to the named subset, preserving matrix
// order (so the same selection always yields the same sweep regardless of
// the order names were given in). Names outside the standard matrix are
// accepted on two-cluster specs when they parse as "<little>/<big>" mixed
// arms with known governor names — the sweep-as-a-service form of "run me a
// custom arm" — and are appended after the matrix subset in the order given.
// Anything else is an error, as is a governor name GovernorByName rejects;
// on single-cluster specs the selection must retain at least one fixed
// frequency, which the oracle needs as candidate set and threshold
// reference.
func selectConfigs(spec soc.Spec, all []Config, names []string) ([]Config, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []Config
	fixed := false
	for _, cfg := range all {
		if !want[cfg.Name] {
			continue
		}
		delete(want, cfg.Name)
		out = append(out, cfg)
		if cfg.OPPIndex >= 0 {
			fixed = true
		}
	}
	for _, n := range names {
		if !want[n] {
			continue
		}
		delete(want, n)
		cfg, err := mixedArmConfig(spec, n)
		if err != nil {
			return nil, err
		}
		out = append(out, cfg)
	}
	if len(spec.Clusters) == 1 && !fixed {
		return nil, fmt.Errorf("config selection needs at least one fixed frequency on a single-cluster spec (oracle candidates)")
	}
	return out, nil
}

// mixedArmConfig parses a config name outside the standard matrix as a
// per-cluster governor assignment ("<little governor>/<big governor>") on a
// two-cluster spec, resolving every governor name so a typo fails here — at
// validation — rather than inside a replay worker.
func mixedArmConfig(spec soc.Spec, name string) (Config, error) {
	if !IsMixedArm(name) || len(spec.Clusters) != 2 {
		return Config{}, fmt.Errorf("unknown config %q in selection", name)
	}
	parts := strings.Split(name, "/")
	if len(parts) != len(spec.Clusters) {
		return Config{}, fmt.Errorf("mixed arm %q names %d governors for a %d-cluster spec",
			name, len(parts), len(spec.Clusters))
	}
	for i, gov := range parts {
		if _, err := GovernorByName(gov, spec.Clusters[i].Table); err != nil {
			return Config{}, fmt.Errorf("config %q: %w", name, err)
		}
	}
	return Config{Name: name, OPPIndex: -1, ArmNames: parts}, nil
}

// MatrixResult holds the spec-aware characterisation sweep of one workload:
// the config-matrix runs, the placement-pinned candidate runs behind the
// cluster-aware oracle, the shared thresholds, and one oracle per
// repetition. It is the heterogeneous generalisation of DatasetResult, and
// like it is immutable once RunMatrix returns.
type MatrixResult struct {
	// Workload and Spec identify the sweep; Model is the calibrated
	// per-cluster power model (watts per OPP per cluster).
	Workload *workload.Workload
	Spec     soc.Spec
	Model    *power.SoCModel
	// Recording, Gestures and DB are the shared record/annotate artefacts.
	Recording *workload.Recording
	Gestures  []evdev.Gesture
	DB        *annotate.DB
	// Configs is the swept matrix (MatrixConfigs order).
	Configs []Config
	// Runs maps config name to its repetitions, in rep order.
	Runs map[string][]*Run
	// Candidates holds the oracle's search space per repetition: one
	// placement-pinned run per (cluster, OPP), ordered (cluster, OPP)
	// ascending.
	Candidates [][]oracle.ClusterFixedRun
	// Thresholds is the paper's rule generalised to the heterogeneous
	// search space: 110% of the worst-across-reps lag durations of the
	// fastest candidate (the big cluster's top clock).
	Thresholds core.Thresholds
	// Oracles holds one cluster-aware oracle per repetition;
	// OracleEnergyJ is their mean dynamic energy in joules.
	Oracles       []*oracle.ClusterOracle
	OracleEnergyJ float64
}

// RunMatrix executes the full characterisation sweep for one workload on an
// explicit SoC spec: record once, annotate once, replay every MatrixConfigs
// configuration Reps times, replay the (cluster, OPP) oracle candidates, and
// build one energy-aware cluster oracle per repetition — all across the
// bounded worker pool, with deterministic results regardless of worker
// interleaving. On the single-cluster Dragonboard spec the candidate runs
// coincide with the fixed-frequency matrix runs and are reused, so the sweep
// is exactly the paper's 17x5 study plus the oracle.
func RunMatrix(w *workload.Workload, spec soc.Spec, opts Options) (*MatrixResult, error) {
	opts = opts.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	wc := *w
	wc.Profile.SoC = spec
	w = &wc

	socModel, err := spec.Calibrate(0)
	if err != nil {
		return nil, fmt.Errorf("experiment: calibrate %s: %w", spec.Name, err)
	}
	res := &MatrixResult{
		Workload: w,
		Spec:     spec,
		Model:    socModel,
		Configs:  MatrixConfigs(spec),
		Runs:     make(map[string][]*Run),
	}
	if len(opts.Configs) > 0 {
		sel, err := selectConfigs(spec, res.Configs, opts.Configs)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		res.Configs = sel
	}

	if err := opts.Context.Err(); err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name, err)
	}
	opts.progress("[%s] recording workload on %s", w.Name, spec.Name)
	rec, _, err := w.Record(opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("experiment: record %s: %w", w.Name, err)
	}
	res.Recording = rec
	res.Gestures = match.Gestures(rec.Events)

	opts.progress("[%s] annotating (Part A)", w.Name)
	annArt := workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "annotation", opts.Seed^0xA11, true)
	db, err := annotate.Build(w.Name, annArt.Video, res.Gestures, annArt.Truths, annotate.BuildOptions{MinStill: 1})
	if err != nil {
		return nil, fmt.Errorf("experiment: annotate %s: %w", w.Name, err)
	}
	res.DB = db

	// The job matrix: config runs plus, on multi-cluster specs, the
	// placement-pinned candidate runs the oracle searches. On a
	// single-cluster spec every candidate coincides with a fixed config run
	// and is reused instead of re-replayed.
	multi := len(spec.Clusters) > 1
	type job struct {
		candidate    bool
		cfg          Config // matrix job
		cluster, opp int    // candidate job
		rep          int
	}
	var jobs []job
	for _, cfg := range res.Configs {
		for rep := 0; rep < opts.Reps; rep++ {
			jobs = append(jobs, job{cfg: cfg, rep: rep})
		}
	}
	nCand := 0
	if multi {
		for ci, cs := range spec.Clusters {
			for oi := range cs.Table {
				for rep := 0; rep < opts.Reps; rep++ {
					jobs = append(jobs, job{candidate: true, cluster: ci, opp: oi, rep: rep})
				}
				nCand++
			}
		}
	}
	opts.progress("[%s] replaying %d configs x %d reps + %d oracle candidates x %d reps = %d runs",
		w.Name, len(res.Configs), opts.Reps, nCand, opts.Reps, len(jobs))

	runs := make([]*Run, len(jobs))
	cands := make([]oracle.ClusterFixedRun, len(jobs))
	errs := make([]error, len(jobs))
	poolErr := opts.runJobs(len(jobs), func(ji int, scratch *replayScratch) {
		opts.jobEnter(ji)
		defer opts.beat()
		j := jobs[ji]
		seed := opts.Seed ^ (uint64(ji+1) * 0x9e3779b9)
		if !j.candidate {
			runs[ji], errs[ji] = executeRun(w, rec, db, res.Gestures, nil, socModel, j.cfg, j.rep, seed, scratch)
			if errs[ji] == nil {
				opts.emit(RunUpdate{Kind: "config", Config: j.cfg.Name, Rep: j.rep, Index: ji, Total: len(jobs), Run: runs[ji]})
			}
			return
		}
		cands[ji], errs[ji] = executeCandidateRun(w, rec, db, res.Gestures, spec, j.cluster, j.opp, seed, scratch)
		if errs[ji] == nil {
			cs := spec.Clusters[j.cluster]
			opts.emit(RunUpdate{Kind: "candidate", Config: cs.Name + "@" + cs.Table[j.opp].Label(),
				Rep: j.rep, Index: ji, Total: len(jobs)})
		}
	}, func(ji int, pe *PanicError) {
		errs[ji] = pe
		opts.emit(faultUpdate(ji, len(jobs), pe))
		opts.beat()
	})
	if poolErr != nil {
		return nil, fmt.Errorf("experiment: %s: %w", w.Name, poolErr)
	}
	for ji, err := range errs {
		if err != nil {
			j := jobs[ji]
			if j.candidate {
				return nil, fmt.Errorf("experiment: %s candidate %s@%s rep %d: %w", w.Name,
					spec.Clusters[j.cluster].Name, spec.Clusters[j.cluster].Table[j.opp].Label(), j.rep, err)
			}
			return nil, fmt.Errorf("experiment: %s %s rep %d: %w", w.Name, j.cfg.Name, j.rep, err)
		}
	}
	for _, r := range runs {
		if r != nil {
			res.Runs[r.Config] = append(res.Runs[r.Config], r)
		}
	}

	// Assemble the per-rep candidate sets. On a single-cluster spec the
	// fixed matrix runs are the candidates.
	res.Candidates = make([][]oracle.ClusterFixedRun, opts.Reps)
	if multi {
		for ji, j := range jobs {
			if j.candidate {
				res.Candidates[j.rep] = append(res.Candidates[j.rep], cands[ji])
			}
		}
		for rep := range res.Candidates {
			sort.Slice(res.Candidates[rep], func(a, b int) bool {
				ca, cb := res.Candidates[rep][a], res.Candidates[rep][b]
				if ca.Cluster != cb.Cluster {
					return ca.Cluster < cb.Cluster
				}
				return ca.OPPIndex < cb.OPPIndex
			})
		}
	} else {
		// Single-cluster candidates are the fixed matrix runs themselves.
		// Under a config selection only the selected fixed frequencies
		// exist; selectConfigs guarantees there is at least one.
		for rep := 0; rep < opts.Reps; rep++ {
			for _, cfg := range res.Configs {
				if cfg.OPPIndex < 0 {
					continue
				}
				rs := res.Runs[cfg.Name]
				if rep >= len(rs) {
					return nil, fmt.Errorf("experiment: missing rep %d for %s", rep, cfg.Name)
				}
				res.Candidates[rep] = append(res.Candidates[rep], oracle.ClusterFixedRun{
					Cluster: 0, OPPIndex: cfg.OPPIndex,
					Profile: rs[rep].Profile, BusyCurve: rs[rep].BusyCurve,
				})
			}
		}
	}

	if err := res.buildClusterOracles(opts.Factor); err != nil {
		return nil, err
	}
	opts.progress("[%s] done: cluster oracle %.2f J", w.Name, res.OracleEnergyJ)
	return res, nil
}

// executeCandidateRun replays the workload with every task placed on one
// cluster pinned at one OPP — a single point of the cluster oracle's search
// space. Placement pinning is a single-cluster boot of that cluster's spec:
// with one frequency domain the scheduler degenerates and all work, input
// handling and background services run there, which is exactly the
// counterfactual the oracle needs ("what if this lag were served on the
// little cluster at 0.80 GHz?").
func executeCandidateRun(w *workload.Workload, rec *workload.Recording, db *annotate.DB,
	gestures []evdev.Gesture, spec soc.Spec, cluster, opp int, seed uint64,
	scratch *replayScratch) (oracle.ClusterFixedRun, error) {
	cs := spec.Clusters[cluster]
	wc := *w
	wc.Profile.SoC = soc.Spec{Name: spec.Name + "-" + cs.Name + "-only", Clusters: []soc.ClusterSpec{cs}}
	// The single-cluster boot must carry the single-cluster slice of the
	// profile's per-cluster environment: its own thermal zone (Validate
	// requires one zone per cluster), its own battery cap, and no shared
	// power model (calibrated for the full spec's cluster count).
	if wc.Profile.Thermal.Enabled() {
		wc.Profile.Thermal.Zones = wc.Profile.Thermal.Zones[cluster : cluster+1]
	}
	if cluster < len(wc.Profile.FreqCaps) {
		wc.Profile.FreqCaps = wc.Profile.FreqCaps[cluster : cluster+1]
	} else {
		wc.Profile.FreqCaps = nil
	}
	wc.Profile.ThermalPower = nil
	wc.Profile.FramePool = scratch.frames
	name := cs.Name + "@" + cs.Table[opp].Label()
	sess := scratch.session(&wc)
	// Candidate runs retain only the profile and the aggregate busy curve,
	// so the per-cluster trace series recycle from one candidate replay into
	// the worker's next one (the next Seal consumes the scratch).
	sess.Dev.SetTraceScratch(scratch.takeTraces())
	govs := []governor.Governor{governor.NewFixed(cs.Table, opp)}
	art := sess.ReplayRecording(rec, govs, name, seed, true)
	profile, err := match.Match(art.Video, db, gestures, name, match.Options{Strict: true})
	if err != nil {
		return oracle.ClusterFixedRun{}, err
	}
	scratch.release(art.Video)
	art.Video = nil
	scratch.releaseTraces(art.Clusters)
	art.Clusters = nil
	art.FreqTrace = nil // aliases the released cluster traces
	return oracle.ClusterFixedRun{
		Cluster:   cluster,
		OPPIndex:  opp,
		Profile:   profile,
		BusyCurve: art.BusyCurve,
	}, nil
}

// buildClusterOracles derives the sweep thresholds (110% of the worst
// fastest-candidate lag durations across repetitions, so the oracle is never
// irritating despite per-repetition jitter) and one cluster-aware oracle per
// repetition.
func (res *MatrixResult) buildClusterOracles(factor float64) error {
	if len(res.Candidates) == 0 || len(res.Candidates[0]) == 0 {
		return fmt.Errorf("experiment: no oracle candidates")
	}
	// The fastest candidate: highest clock, ties toward the bigger cluster.
	fastestOf := func(cands []oracle.ClusterFixedRun) oracle.ClusterFixedRun {
		best := cands[0]
		bestKHz := res.Model.Cluster(best.Cluster).Table[best.OPPIndex].KHz
		for _, c := range cands[1:] {
			khz := res.Model.Cluster(c.Cluster).Table[c.OPPIndex].KHz
			if khz > bestKHz || (khz == bestKHz && c.Cluster > best.Cluster) {
				best, bestKHz = c, khz
			}
		}
		return best
	}

	// Worst-across-reps composite of the fastest candidate's lags.
	fasts := make([]oracle.ClusterFixedRun, len(res.Candidates))
	for rep, cands := range res.Candidates {
		fasts[rep] = fastestOf(cands)
	}
	first := fasts[0]
	ref := &core.Profile{Workload: res.Workload.Name, Config: "fastest"}
	nLags := len(first.Profile.Lags)
	for i := 0; i < nLags; i++ {
		lag := first.Profile.Lags[i]
		if lag.Spurious {
			ref.Lags = append(ref.Lags, lag)
			continue
		}
		worst := lag.Duration()
		for _, f := range fasts[1:] {
			if i < len(f.Profile.Lags) {
				if d := f.Profile.Lags[i].Duration(); d > worst {
					worst = d
				}
			}
		}
		ref.Lags = append(ref.Lags, core.Lag{
			Index: lag.Index, Label: lag.Label, Begin: lag.Begin, End: lag.Begin.Add(worst),
		})
	}
	if factor <= 0 {
		factor = 1.10
	}
	res.Thresholds = core.RelativeThresholds(ref, factor)

	var energySum float64
	for rep, cands := range res.Candidates {
		o, err := oracle.BuildCluster(cands, res.Model, 0, &res.Thresholds)
		if err != nil {
			return fmt.Errorf("experiment: cluster oracle rep %d: %w", rep, err)
		}
		res.Oracles = append(res.Oracles, o)
		energySum += o.EnergyJ
	}
	res.OracleEnergyJ = energySum / float64(len(res.Candidates))
	return nil
}

// MeanEnergyJ returns the mean dynamic energy of a configuration in joules.
func (res *MatrixResult) MeanEnergyJ(config string) float64 {
	rs := res.Runs[config]
	if len(rs) == 0 {
		return 0
	}
	var s float64
	for _, r := range rs {
		s += r.EnergyJ
	}
	return s / float64(len(rs))
}

// MeanLeakEnergyJ returns the mean idle leakage energy of a configuration in
// joules (0 on specs without C-state ladders).
func (res *MatrixResult) MeanLeakEnergyJ(config string) float64 {
	rs := res.Runs[config]
	if len(rs) == 0 {
		return 0
	}
	var s float64
	for _, r := range rs {
		s += r.LeakEnergyJ
	}
	return s / float64(len(rs))
}

// MeanTotalEnergyJ returns the mean dynamic-plus-leakage energy of a
// configuration in joules. Without idle ladders it equals MeanEnergyJ.
func (res *MatrixResult) MeanTotalEnergyJ(config string) float64 {
	return res.MeanEnergyJ(config) + res.MeanLeakEnergyJ(config)
}

// NormEnergy returns a configuration's mean total energy normalised to the
// cluster oracle's. The oracle's EnergyJ prices idle time the same way the
// runs do (leakage is zero without ladders), so the ratio compares like with
// like on both kinds of spec.
func (res *MatrixResult) NormEnergy(config string) float64 {
	if res.OracleEnergyJ == 0 {
		return 0
	}
	return res.MeanTotalEnergyJ(config) / res.OracleEnergyJ
}

// MeanIrritation returns a configuration's mean user irritation under the
// sweep thresholds.
func (res *MatrixResult) MeanIrritation(config string) sim.Duration {
	rs := res.Runs[config]
	if len(rs) == 0 {
		return 0
	}
	var s sim.Duration
	for _, r := range rs {
		s += core.Irritation(r.Profile, res.Thresholds)
	}
	return s / sim.Duration(len(rs))
}

// MeanMigrations returns a configuration's mean scheduler migration count.
func (res *MatrixResult) MeanMigrations(config string) float64 {
	rs := res.Runs[config]
	if len(rs) == 0 {
		return 0
	}
	s := 0
	for _, r := range rs {
		s += r.Migrations
	}
	return float64(s) / float64(len(rs))
}

// ClusterBusyShare returns the mean fraction of core-busy time each cluster
// contributed under a configuration, in cluster order (sums to 1 when any
// work ran).
func (res *MatrixResult) ClusterBusyShare(config string) []float64 {
	rs := res.Runs[config]
	shares := make([]float64, len(res.Spec.Clusters))
	if len(rs) == 0 {
		return shares
	}
	for _, r := range rs {
		var total float64
		perCluster := make([]float64, len(shares))
		for ci, ct := range r.Clusters {
			b := ct.Busy.Total().Seconds()
			perCluster[ci] = b
			total += b
		}
		if total == 0 {
			continue
		}
		for ci := range shares {
			shares[ci] += perCluster[ci] / total
		}
	}
	for ci := range shares {
		shares[ci] /= float64(len(rs))
	}
	return shares
}

// OracleClusterShares returns the mean fraction of lags the per-rep oracles
// served on each cluster, in cluster order.
func (res *MatrixResult) OracleClusterShares() []float64 {
	shares := make([]float64, len(res.Spec.Clusters))
	if len(res.Oracles) == 0 {
		return shares
	}
	for _, o := range res.Oracles {
		for ci, s := range o.ClusterShares(len(shares)) {
			shares[ci] += s
		}
	}
	for ci := range shares {
		shares[ci] /= float64(len(res.Oracles))
	}
	return shares
}

// ConfigNames returns the matrix configuration names in figure order.
func (res *MatrixResult) ConfigNames() []string {
	var names []string
	for _, c := range res.Configs {
		names = append(names, c.Name)
	}
	return names
}

// IsMixedArm reports whether a config name denotes a per-cluster governor
// assignment ("<little>/<big>").
func IsMixedArm(name string) bool { return strings.Contains(name, "/") }
