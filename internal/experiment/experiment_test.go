package experiment

import (
	"testing"

	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/workload"
)

func quickResult(t *testing.T, reps int) *DatasetResult {
	t.Helper()
	model, err := power.Calibrate(power.Snapdragon8074(), power.DefaultSilicon(), 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunDataset(workload.Quickstart(), model, Options{Reps: reps, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQuickstartMatrix(t *testing.T) {
	res := quickResult(t, 2)

	if got := len(res.Configs); got != 17 {
		t.Fatalf("configurations = %d, want 17 (14 fixed + 3 governors)", got)
	}
	for _, cfg := range res.Configs {
		if len(res.Runs[cfg.Name]) != 2 {
			t.Fatalf("%s: %d runs, want 2", cfg.Name, len(res.Runs[cfg.Name]))
		}
	}

	// Oracle invariants: zero irritation by construction, energy strictly
	// below the fastest fixed configuration.
	for _, o := range res.Oracles {
		if o.Irritation() != 0 {
			t.Errorf("oracle irritation = %v, want 0", o.Irritation())
		}
		if o.BaseOPP < 3 || o.BaseOPP > 8 {
			t.Errorf("oracle base OPP = %d (%s), want a mid frequency (race-to-idle)",
				o.BaseOPP, res.Model.Table[o.BaseOPP].Label())
		}
	}
	fastest := res.Model.Table[len(res.Model.Table)-1].Label()
	if res.OracleEnergyJ >= res.MeanEnergyJ(fastest) {
		t.Errorf("oracle energy %.3f J >= fastest fixed %.3f J", res.OracleEnergyJ, res.MeanEnergyJ(fastest))
	}

	// Irritation shrinks as fixed frequency grows (paper Fig. 12 left), and
	// is zero at the fastest frequency by the threshold construction.
	irr030 := res.MeanIrritation("0.30 GHz")
	irr096 := res.MeanIrritation("0.96 GHz")
	irr215 := res.MeanIrritation("2.15 GHz")
	if !(irr030 > irr096 && irr096 >= irr215) {
		t.Errorf("irritation not decreasing: 0.30=%v 0.96=%v 2.15=%v", irr030, irr096, irr215)
	}
	if irr215 > 200*sim.Millisecond {
		t.Errorf("fastest-frequency irritation = %v, want ~0", irr215)
	}

	// Input classification must see the quickstart's 7 gestures.
	taps, swipes, actual, spurious := res.InputClassification()
	if taps+swipes != 7 || actual != 6 || spurious != 1 {
		t.Errorf("classification: taps=%d swipes=%d actual=%d spurious=%d", taps, swipes, actual, spurious)
	}
}

func TestGovernorOrderingOnQuickstart(t *testing.T) {
	res := quickResult(t, 2)
	// Conservative must be the most irritating governor; interactive and
	// ondemand near the oracle (paper Fig. 14 bottom).
	cons := res.MeanIrritation("conservative")
	inter := res.MeanIrritation("interactive")
	ond := res.MeanIrritation("ondemand")
	if cons <= inter || cons <= ond {
		t.Errorf("conservative (%v) should irritate more than interactive (%v) and ondemand (%v)", cons, inter, ond)
	}
	// Conservative must use the least energy of the three governors (paper:
	// 8% below even the oracle on average).
	ce, ie, oe := res.NormEnergy("conservative"), res.NormEnergy("interactive"), res.NormEnergy("ondemand")
	if ce >= ie || ce >= oe {
		t.Errorf("conservative energy (%.2f) should undercut interactive (%.2f) and ondemand (%.2f)", ce, ie, oe)
	}
}

func TestEnergyUShapeOverFixedFrequencies(t *testing.T) {
	res := quickResult(t, 1)
	tbl := res.Model.Table
	// The energy-optimal fixed frequency must be in the middle of the
	// ladder, and the top must cost much more (race-to-idle, Fig. 12 right).
	best, bestE := -1, 0.0
	for i := range tbl {
		e := res.MeanEnergyJ(tbl[i].Label())
		if best < 0 || e < bestE {
			best, bestE = i, e
		}
	}
	if best < 3 || best > 8 {
		t.Errorf("energy-optimal fixed frequency = %s, want mid-ladder", tbl[best].Label())
	}
	top := res.MeanEnergyJ(tbl[len(tbl)-1].Label())
	if top < 1.4*bestE {
		t.Errorf("2.15 GHz energy %.3f J not well above optimum %.3f J", top, bestE)
	}
}
