package device

import (
	"repro/internal/apps"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/snap"
	"repro/internal/soc"
	"repro/internal/trace"
)

// Checkpoint is a deep snapshot of a device's complete simulation state:
// engine clock and event queue, SoC (clusters, run queues, task pool, idle
// ladders), RNG stream position, app and service state machines, ground
// truth, governor state, traces and thermal state.
//
// A checkpoint is bound to the device it was taken from: the restored engine
// queue holds the original closures, which capture that device's apps,
// services and tick functions. Restoring into a different device is
// undefined. All buffers are reused across Checkpoint calls, so a
// steady-state checkpoint/restore cycle allocates nothing once they reach
// the run's high-water mark.
//
// Two kinds of checkpoint exist, distinguished by when they are taken:
//
//   - Boot checkpoints (taken on a booted-but-unsealed device, the fork
//     point of replay sessions): Restore rewinds to the shared warm prefix;
//     the caller then Seals with the run's seed and governors. This is the
//     cheap, always-safe kind — at that instant the engine queue holds only
//     background-service start events whose closures capture stable service
//     objects.
//   - Mid-run checkpoints (taken on a sealed device): Restore additionally
//     rewinds governors, traces and thermal state, and the run resumes
//     without re-Sealing. These must be taken at instants quiescent with
//     respect to interactions — in-flight interaction chains live in
//     closure-captured locals that a snapshot cannot reach (see
//     docs/performance.md).
type Checkpoint struct {
	eng  sim.EngineSnap
	soc  soc.Snap
	rand uint64

	dirty bool
	anims []string

	haveGesture bool
	gesture     evdev.Gesture
	gotX, gotY  bool
	nSubs       int

	truths      []GroundTruth
	dispatchIdx int
	foreground  string

	// state serialises app, launcher, stateful-service and (when sealed)
	// governor state, in a fixed order.
	state snap.Buf

	vsyncOn  bool
	thermalN int

	// sealed marks a mid-run checkpoint of a sealed device; the fields below
	// it are only populated (and only restored) when it is set.
	sealed    bool
	traces    []*trace.ClusterTraces
	busy      trace.BusyCurve
	zoneTemps []float64
	capIdxs   []int
	prevBusy  [][]sim.Duration
}

// Checkpoint captures the device's complete state into cp (allocating one
// when nil) and returns it. Mid-run checkpoints must be quiescent with
// respect to interactions; see the type comment.
func (d *Device) Checkpoint(cp *Checkpoint) *Checkpoint {
	if cp == nil {
		cp = &Checkpoint{}
	}
	d.Eng.Snapshot(&cp.eng)
	d.SoC.Snapshot(&cp.soc)
	cp.rand = d.rand.State()

	cp.dirty = d.dirty
	cp.anims = cp.anims[:0]
	for k := range d.anims {
		cp.anims = append(cp.anims, k)
	}

	cp.haveGesture = d.curGesture != nil
	if cp.haveGesture {
		cp.gesture = *d.curGesture
	}
	cp.gotX, cp.gotY = d.gotX, d.gotY
	cp.nSubs = len(d.subscribers)

	cp.truths = append(cp.truths[:0], d.truths...)
	cp.dispatchIdx = d.dispatchIdx
	cp.foreground = ""
	if d.foreground != nil {
		cp.foreground = d.foreground.Name()
	}

	cp.state.Reset()
	for _, name := range d.appOrder {
		d.appsByName[name].SaveState(&cp.state)
	}
	d.launcher.SaveState(&cp.state)
	for _, s := range d.svcs {
		if ss, ok := s.(apps.StatefulService); ok {
			ss.SaveState(&cp.state)
		}
	}

	cp.vsyncOn = d.vsyncOn
	cp.thermalN = d.thermalN

	cp.sealed = len(d.Govs) > 0
	if !cp.sealed {
		return cp
	}
	for _, gov := range d.Govs {
		if c, ok := gov.(governor.Checkpointable); ok {
			c.SaveState(&cp.state)
		}
	}
	if cap(cp.traces) < len(d.ClusterTraces) {
		grown := make([]*trace.ClusterTraces, len(d.ClusterTraces))
		copy(grown, cp.traces[:cap(cp.traces)])
		cp.traces = grown
	}
	cp.traces = cp.traces[:len(d.ClusterTraces)]
	for i, ct := range d.ClusterTraces {
		if cp.traces[i] == nil {
			cp.traces[i] = &trace.ClusterTraces{}
		}
		cp.traces[i].CopyFrom(ct)
	}
	cp.busy.CopyFrom(d.BusyCurve)
	cp.zoneTemps = cp.zoneTemps[:0]
	cp.capIdxs = cp.capIdxs[:0]
	for i, z := range d.Zones {
		cp.zoneTemps = append(cp.zoneTemps, z.TempC())
		cp.capIdxs = append(cp.capIdxs, d.throttlers[i].CapIndex())
	}
	if cap(cp.prevBusy) < len(d.prevBusy) {
		grown := make([][]sim.Duration, len(d.prevBusy))
		copy(grown, cp.prevBusy[:cap(cp.prevBusy)])
		cp.prevBusy = grown
	}
	cp.prevBusy = cp.prevBusy[:len(d.prevBusy)]
	for i, pb := range d.prevBusy {
		cp.prevBusy[i] = append(cp.prevBusy[i][:0], pb...)
	}
	return cp
}

// Restore rewinds the device to the state captured by Checkpoint. After
// restoring a boot checkpoint the device is unsealed; call Seal to start the
// forked run. After restoring a mid-run checkpoint the run resumes directly.
// The screen is re-rendered from app state on the next Frame call, which
// reproduces the checkpointed content exactly.
func (d *Device) Restore(cp *Checkpoint) {
	d.Eng.Restore(&cp.eng)
	d.SoC.Restore(&cp.soc)
	d.rand.SetState(cp.rand)

	d.dirty = cp.dirty
	d.cached = nil
	for k := range d.anims {
		delete(d.anims, k)
	}
	for _, k := range cp.anims {
		d.anims[k] = true
	}

	if cp.haveGesture {
		d.gestureBuf = cp.gesture
		d.curGesture = &d.gestureBuf
	} else {
		d.curGesture = nil
	}
	d.gotX, d.gotY = cp.gotX, cp.gotY
	d.subscribers = d.subscribers[:cp.nSubs]

	d.truths = append(d.truths[:0], cp.truths...)
	d.dispatchIdx = cp.dispatchIdx
	d.foreground = d.appsByName[cp.foreground]

	cp.state.Rewind()
	for _, name := range d.appOrder {
		d.appsByName[name].LoadState(&cp.state)
	}
	d.launcher.LoadState(&cp.state)
	for _, s := range d.svcs {
		if ss, ok := s.(apps.StatefulService); ok {
			ss.LoadState(&cp.state)
		}
	}

	d.vsyncOn = cp.vsyncOn
	d.thermalN = cp.thermalN

	if !cp.sealed {
		// Back to the boot instant: no governors, no traces. Thermal zone
		// objects (if an earlier Seal created them) stay allocated; the next
		// sealThermal resets them in place.
		d.Govs = d.Govs[:0]
		d.Gov = nil
		d.ClusterTraces = d.ClusterTraces[:0]
		d.FreqTrace = nil
		d.BusyCurve = nil
		d.OnInteraction = nil
		d.OnDirty = nil
		return
	}
	for _, gov := range d.Govs {
		if c, ok := gov.(governor.Checkpointable); ok {
			c.LoadState(&cp.state)
		}
	}
	for i, ct := range d.ClusterTraces {
		ct.CopyFrom(cp.traces[i])
	}
	d.BusyCurve.CopyFrom(&cp.busy)
	for i := range d.Zones {
		d.Zones[i].SetTempC(cp.zoneTemps[i])
		d.throttlers[i].SetCapIndex(cp.capIdxs[i])
		copy(d.prevBusy[i], cp.prevBusy[i])
	}
}

// CheckpointPool recycles Checkpoint objects (and, transitively, every
// buffer inside them). Sweeps that fork many runs from one prefix keep a
// pool per worker so steady-state forking allocates nothing.
type CheckpointPool struct {
	free []*Checkpoint
}

// Get returns a recycled checkpoint, or a fresh one if the pool is empty.
func (p *CheckpointPool) Get() *Checkpoint {
	if n := len(p.free); n > 0 {
		cp := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return cp
	}
	return &Checkpoint{}
}

// Put returns a checkpoint to the pool for reuse.
func (p *CheckpointPool) Put(cp *Checkpoint) {
	if cp != nil {
		p.free = append(p.free, cp)
	}
}

// FaultCorrupt deliberately wrecks the checkpoint's serialised app/service
// state so the next Restore fails loudly: the typed snapshot reads run off
// the truncated buffer and panic deterministically. This is the
// fault-injection stand-in for "a warm checkpoint was silently damaged" —
// the failure the replay pool's panic recovery and session quarantine must
// contain and heal (evict the poisoned session, reboot cold on next use).
// Fault-injection suites only.
func (cp *Checkpoint) FaultCorrupt() { cp.state.FaultTruncate() }
