package device_test

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
)

// heatBig keeps one big-cluster core saturated by chaining pinned bursts
// until the deadline passes.
func heatBig(d *device.Device, cluster int, cycles int64, until sim.Time) {
	var next func(sim.Time)
	next = func(at sim.Time) {
		if at >= until {
			return
		}
		d.SoC.SubmitPinned(cluster, "heat", soc.Cycles(cycles), next)
	}
	d.SoC.SubmitPinned(cluster, "heat", soc.Cycles(cycles), next)
}

// TestDeviceThermalThrottleAndRecover drives a thermal-enabled big.LITTLE
// device through the full pipeline: sustained big-cluster load heats the
// zone past trip, the throttler caps the ladder (visible in the throttle
// trace and the applied frequency), and once the load stops the zone cools
// and the cap walks back up, restoring the governor's pending request.
func TestDeviceThermalThrottleAndRecover(t *testing.T) {
	eng := sim.NewEngine()
	prof := device.Profile{
		SoC:     soc.BigLittle44(),
		Thermal: thermal.PhoneConfig(2, 30, 3),
	}
	govs := []governor.Governor{
		governor.Powersave(power.LittleCortex()),
		governor.Performance(power.Snapdragon8074()),
	}
	d := device.NewMulti(eng, 1, govs, prof)
	big := d.SoC.Cluster(1)
	topIdx := len(big.Table()) - 1

	heatBig(d, 1, 200_000_000, sim.Time(60*sim.Second))
	eng.RunUntil(sim.Time(60 * sim.Second))

	bt := d.ClusterTraces[1]
	if bt.Temp.Len() == 0 {
		t.Fatal("no temperature samples recorded")
	}
	if peak := bt.Temp.PeakC(); peak < 30 {
		t.Fatalf("big zone peaked at %.1f°C under sustained max-frequency load, want above trip 30", peak)
	}
	if bt.Throttle.CapDowns() == 0 {
		t.Fatal("no cap-down events under sustained load past trip")
	}
	if !big.Capped() {
		t.Fatal("big cluster not capped while hot")
	}
	if big.OPPIndex() > big.CapIndex() {
		t.Fatalf("applied OPP %d above cap %d", big.OPPIndex(), big.CapIndex())
	}
	if big.RequestedOPPIndex() != topIdx {
		t.Fatalf("performance request %d lost under cap, want %d", big.RequestedOPPIndex(), topIdx)
	}
	if bt.Temp.TimeAbove(30, eng.Now()) == 0 {
		t.Fatal("no time-above-trip residency recorded")
	}

	// The heater stops at 60s: the zone cools below clear, the cap walks
	// back up, and the performance governor's pending request is restored
	// without the governor issuing a new one.
	eng.RunUntil(sim.Time(5 * sim.Minute))
	if bt.Throttle.CapUps() == 0 {
		t.Fatal("no cap-up events after the load stopped and the zone cooled")
	}
	if big.Capped() {
		t.Fatalf("big cluster still capped at %d after full cool-down", big.CapIndex())
	}
	if big.OPPIndex() != topIdx {
		t.Fatalf("applied OPP %d after caps lifted, want restored request %d", big.OPPIndex(), topIdx)
	}
}

// TestDeviceRecordOnlyZonesKeepTracesIdentical pins the acceptance
// guarantee: booting zones WITHOUT a trip (record-only) must leave the
// frequency trace, busy histogram and busy curve of a run bit-for-bit
// identical to a run with no thermal config at all — the tick only observes.
func TestDeviceRecordOnlyZonesKeepTracesIdentical(t *testing.T) {
	run := func(withZones bool) (string, float64) {
		eng := sim.NewEngine()
		prof := device.Profile{SoC: soc.BigLittle44()}
		if withZones {
			prof.Thermal = thermal.PhoneConfig(2, 0, 0) // zones, no trip
		}
		govs := []governor.Governor{governor.NewInteractive(), governor.NewInteractive()}
		d := device.NewMulti(eng, 7, govs, prof)
		heatBig(d, 1, 150_000_000, sim.Time(25*sim.Second))
		// Light little-cluster churn as well.
		for i := 0; i < 40; i++ {
			at := sim.Time(i) * sim.Time(500*sim.Millisecond)
			eng.At(at, func(*sim.Engine) { d.SoC.SubmitPinned(0, "w", 5_000_000, nil) })
		}
		eng.RunUntil(sim.Time(30 * sim.Second))
		h := sha256.New()
		for ci, ct := range d.ClusterTraces {
			for _, p := range ct.Freq.Points {
				fmt.Fprintf(h, "%d:%d:%d;", ci, p.At, p.OPPIndex)
			}
			for _, b := range d.SoC.Cluster(ci).BusyByOPP() {
				fmt.Fprintf(h, "%d,", b)
			}
			for _, c := range ct.Busy.Cum {
				fmt.Fprintf(h, "%d.", c)
			}
		}
		var peak float64
		if len(d.Zones) > 0 {
			peak = d.ClusterTraces[1].Temp.PeakC()
		}
		return fmt.Sprintf("%x", h.Sum(nil)), peak
	}

	plain, _ := run(false)
	zoned, peak := run(true)
	if plain != zoned {
		t.Fatal("record-only thermal zones perturbed the frequency/busy traces")
	}
	if peak <= 25 {
		t.Fatalf("record-only zones recorded no heating (peak %.1f°C)", peak)
	}
}
