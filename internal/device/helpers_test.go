package device

import (
	"repro/internal/power"
	"repro/internal/screen"
)

func powerTable() power.Table { return power.Snapdragon8074() }

func homeCenter() (int, int) { return screen.HomeButtonRect.Center() }
