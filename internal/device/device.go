// Package device assembles the simulated mobile phone: the SoC core with its
// frequency governor, the touch input pipeline (evdev events in, gestures
// dispatched to the foreground app), the screen with status bar and
// navigation bar, background services, and the capture hook the video
// recorder samples at 30 fps.
//
// It is the stand-in for the paper's Dragonboard APQ8074 running Android
// 4.2.2 with one core enabled. Constructing a Device is the paper's "reset
// to a known state": same seed plus same inputs yields the same run.
package device

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/netproxy"
	"repro/internal/power"
	"repro/internal/screen"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/video"
)

// GroundTruth is the device-side record of one input gesture: when it was
// made, whether anything handled it, and when its effects became visible.
// The annotation stage uses it once per workload (playing the human who
// picks the right suggested frame); the matcher never reads it.
type GroundTruth struct {
	Index        int
	Label        string
	Class        core.HCIClass
	Kind         evdev.GestureKind
	InputTime    sim.Time // touch-down
	DispatchTime sim.Time // gesture lift / dispatch
	Spurious     bool
	Complete     bool
	CompleteTime sim.Time
	MaskRects    []screen.Rect // volatile regions of the completion screen
}

// Profile selects the "device image": which background services are active.
// Workload datasets differ in their installed/active services, which shapes
// their out-of-lag load.
type Profile struct {
	MusicAutoPlay bool
	NewsSync      bool
	NewsSyncEvery sim.Duration
	AccountSync   bool
	AccountEvery  sim.Duration
	Telemetry     bool
	// ExtraServices are factories: every booted device gets its own service
	// instances, so concurrent replays never share state.
	ExtraServices []func() apps.Service
	// NetProxy, when set, routes every IO access through the paper's
	// future-work deterministic network proxy: in Record mode observed
	// latencies are stored, in Replay mode they are served verbatim,
	// removing IO jitter between runs entirely.
	NetProxy *netproxy.Proxy
	// AnimFrameWork is the per-frame UI work while an animation runs
	// (spinner redraw, progress updates). Defaults to 1.5 M cycles.
	AnimFrameWork int64
	// IOJitterFrac scales IO durations per repetition (default 0.08).
	IOJitterFrac float64
	// WorkJitterFrac scales CPU burst sizes per repetition (default 0.02).
	WorkJitterFrac float64
	// SoC selects the simulated silicon. The zero value boots the paper's
	// single-core Dragonboard APQ8074; multi-cluster specs (for example
	// soc.BigLittle44) route app and service work through the HMP scheduler
	// and need one governor per cluster (NewMulti).
	SoC soc.Spec
	// Thermal configures the per-cluster RC thermal zones and throttlers.
	// The zero value disables thermal simulation entirely: no zones are
	// booted, no tick runs, and existing traces are bit-for-bit unchanged.
	Thermal thermal.Config
	// ThermalPower, when set, is the calibrated per-cluster power model the
	// thermal zones draw their heat input from; it must match the profile's
	// SoC spec. When nil, a thermal-enabled boot calibrates one itself.
	// Sweeps that boot many devices share one model here instead of paying
	// for calibration per replay. The model is read-only and safe to share
	// across concurrently replaying devices.
	ThermalPower *power.SoCModel
	// FreqCaps, when non-empty, pins a standing per-cluster frequency cap
	// through the arbiter under the "battery" source — the population
	// model's battery-age peak-current limit. Entry i caps cluster i at OPP
	// index FreqCaps[i]; a negative entry leaves that cluster uncapped.
	// Caps are applied at every Seal (after the thermal zones come up, so
	// first Seal and re-Seal produce identical trace prefixes) and composed
	// min-wins with thermal throttling by the arbiter.
	FreqCaps []int
	// FramePool, when set, supplies recycled storage for captured frames.
	// Sweeps give each replay worker its own pool and hand matched videos
	// back to it, so repeated replays capture without allocating. Leave nil
	// whenever the video's frames outlive the replay (annotation builds,
	// anything that stores frames). A pool is not safe for concurrent use.
	FramePool *video.FramePool
	// TraceScratch, when set, supplies recycled per-cluster trace storage:
	// cluster i reuses TraceScratch[i] (Reset, renamed) instead of
	// allocating fresh series. Sweeps that keep only the profile and the
	// aggregate busy curve of a replay — the oracle-candidate runs — hand
	// the previous replay's ClusterTraces back through here. Leave nil
	// whenever the per-cluster traces outlive the replay. Not safe for
	// concurrent use.
	TraceScratch []*trace.ClusterTraces
}

// SoCSpec returns the profile's SoC spec, defaulting to the paper's
// Dragonboard when unset.
func (p Profile) SoCSpec() soc.Spec {
	if len(p.SoC.Clusters) == 0 {
		return soc.Dragonboard()
	}
	return p.SoC
}

// DefaultProfile returns the standard image: telemetry plus account sync.
func DefaultProfile() Profile {
	return Profile{AccountSync: true, Telemetry: true}
}

// Device is the simulated phone.
type Device struct {
	Eng *sim.Engine
	// SoC is the simulated silicon: one or more clusters plus the task
	// scheduler.
	SoC *soc.SoC
	// Core is the first (littlest) cluster — on the paper's Dragonboard spec,
	// the one enabled Krait core.
	Core *soc.Cluster
	// Govs holds one governor per cluster, in cluster order. Gov aliases
	// Govs[0] for the single-cluster call sites.
	Govs []governor.Governor
	Gov  governor.Governor

	prof Profile
	rand *sim.Rand

	appsByName map[string]apps.App
	appOrder   []string
	foreground apps.App
	launcher   *apps.Launcher
	music      *apps.MusicService
	svcs       []apps.Service

	fb     screen.Framebuffer
	dirty  bool
	cached *video.Frame
	anims  map[string]bool

	// Periodic tick machinery, pre-bound once at boot. The loop counters
	// live on the device (not in closure locals) so a checkpoint can capture
	// and restore a mid-run tick cadence exactly. The vsync tick is demand
	// driven: the chain runs only while an animation is active (busy-curve
	// sampling moved into the clusters' own accounting), so vsyncOn tracks
	// whether a tick event is currently in flight.
	vsyncOn       bool
	vsyncFn       func()
	minuteFn      func()
	thermalN      int
	thermalFn     func()
	thermalPeriod sim.Duration

	// busyCurveScratch, when set via SetBusyScratch, is recycled storage for
	// the next Seal's SoC-aggregate busy curve (consumed by that Seal, like
	// TraceScratch).
	busyCurveScratch *trace.BusyCurve

	// input assembly
	curGesture  *evdev.Gesture
	gestureBuf  evdev.Gesture // restore target, so Restore never allocates
	gotX, gotY  bool
	subscribers []func(evdev.Event)

	// ground truth
	truths        []GroundTruth
	dispatchIdx   int // index of gesture being dispatched, -1 otherwise
	OnInteraction func(gt GroundTruth)
	// OnDirty, if set, observes every clean→dirty transition of the screen,
	// firing before the content change lands (see markDirty). Run-scoped:
	// Seal clears it.
	OnDirty func()

	// ClusterTraces holds the per-cluster frequency and busy traces, in
	// cluster order. FreqTrace aliases the first cluster's transition trace;
	// BusyCurve is the SoC-aggregate busy curve (equal to the first cluster's
	// on single-cluster specs) that oracle construction consumes.
	ClusterTraces []*trace.ClusterTraces
	FreqTrace     *trace.FreqTrace
	BusyCurve     *trace.BusyCurve

	// Zones holds one RC thermal zone per cluster on thermal-enabled
	// profiles (nil otherwise); Power is the calibrated per-cluster power
	// model the zones draw their heat input from.
	Zones []*thermal.Zone
	Power *power.SoCModel

	throttlers []*thermal.Throttler
	// prevBusy and busyScratch are per-cluster per-OPP busy histograms: the
	// previous tick's snapshot and a reusable buffer for the current one, so
	// the thermal tick integrates only the busy delta and never allocates.
	prevBusy    [][]sim.Duration
	busyScratch [][]sim.Duration
	riseScratch []float64 // per-zone rise snapshot for coupling
}

// New boots a single-cluster device with the given governor and profile. The
// paper resets the device to a known state before recording; New is that
// reset. Profiles selecting a multi-cluster SoC need one governor per
// cluster — boot those through NewMulti.
func New(eng *sim.Engine, seed uint64, gov governor.Governor, prof Profile) *Device {
	spec := prof.SoCSpec()
	if len(spec.Clusters) > 1 {
		panic(fmt.Sprintf("device: spec %q has %d clusters; boot it with NewMulti and one governor per cluster",
			spec.Name, len(spec.Clusters)))
	}
	return NewMulti(eng, seed, []governor.Governor{gov}, prof)
}

// NewMulti boots a device on the profile's SoC spec with one governor per
// cluster (a nil entry leaves that cluster at its lowest OPP). App and
// service work is routed through the SoC scheduler: on the Dragonboard spec
// that degenerates to the original single-core submission path, so the
// paper's runs reproduce bit for bit.
//
// NewMulti is exactly Boot followed by Seal — the checkpoint layer relies on
// this: restoring a boot checkpoint and Sealing again is indistinguishable
// from a cold NewMulti with the same seed and governors.
func NewMulti(eng *sim.Engine, seed uint64, govs []governor.Governor, prof Profile) *Device {
	d := Boot(eng, prof)
	d.Seal(seed, govs)
	return d
}

// busyStep is the busy-curve sampling period: one 30 Hz display frame.
const busyStep = 33333 * sim.Microsecond

// bootRandSeed seeds the device RNG during Boot. Boot-time draws (background
// service start jitter) deliberately come from this fixed stream, not the run
// seed: the warm prefix up to the boot checkpoint is then identical for every
// run of the same profile, and Seal reseeds the RNG with the run seed at the
// exact instant a forked replay diverges from the shared prefix.
const bootRandSeed uint64 = 0xb007_b007_b007_b007

// Boot constructs the device hardware and cold software state that is shared
// by every run on the same profile: silicon, installed apps, started
// background services, and the pre-bound periodic tick closures. It schedules
// no ticks, attaches no governors and creates no traces — that is Seal's job.
// A booted-but-unsealed device is the natural checkpoint instant for forked
// replays: everything before it is seed-independent.
func Boot(eng *sim.Engine, prof Profile) *Device {
	if prof.AnimFrameWork == 0 {
		prof.AnimFrameWork = 1_500_000
	}
	if prof.IOJitterFrac == 0 {
		prof.IOJitterFrac = 0.08
	}
	if prof.WorkJitterFrac == 0 {
		prof.WorkJitterFrac = 0.02
	}
	d := &Device{
		Eng:         eng,
		SoC:         soc.New(eng, prof.SoCSpec()),
		prof:        prof,
		rand:        sim.NewRand(bootRandSeed),
		appsByName:  make(map[string]apps.App),
		anims:       make(map[string]bool),
		dispatchIdx: -1,
	}
	d.Core = d.SoC.Cluster(0)
	for i, cl := range d.SoC.Clusters() {
		// The hook reads d.ClusterTraces at call time (not capture time), so
		// one closure per cluster survives every Seal's fresh trace set.
		i := i
		cl.OnFreqChange = func(at sim.Time, idx int) {
			if i < len(d.ClusterTraces) {
				d.ClusterTraces[i].Freq.Append(at, idx)
			}
		}
	}
	d.music = apps.NewMusicService(prof.MusicAutoPlay)
	d.installApps()
	d.startServices()
	d.bindTicks()
	return d
}

// Seal finishes booting the device for one concrete run: reseed the RNG with
// the run seed, attach one governor per cluster, create the run's traces,
// bring up the thermal zones and schedule the periodic ticks. Seal may be
// called again after Restore of a boot checkpoint; each call produces a
// device indistinguishable from a cold NewMulti.
func (d *Device) Seal(seed uint64, govs []governor.Governor) {
	spec := d.SoC.Spec()
	if len(govs) != len(spec.Clusters) {
		panic(fmt.Sprintf("device: spec %q has %d clusters but %d governors were supplied",
			spec.Name, len(spec.Clusters), len(govs)))
	}
	d.rand.Reseed(seed)

	// Run-scoped state from a previous life of this device.
	d.truths = d.truths[:0]
	d.dispatchIdx = -1
	d.curGesture = nil
	d.gotX, d.gotY = false, false
	d.subscribers = d.subscribers[:0]
	for k := range d.anims {
		delete(d.anims, k)
	}
	d.cached = nil
	d.OnInteraction = nil
	d.OnDirty = nil

	// Fresh traces per run: a caller that retains a run's artefacts never
	// races the next Seal. Scratch setters opt back into reuse.
	if d.busyCurveScratch != nil {
		d.BusyCurve = d.busyCurveScratch
		d.BusyCurve.Reset()
		d.busyCurveScratch = nil
	} else {
		d.BusyCurve = trace.NewBusyCurve(busyStep)
	}
	ts := d.prof.TraceScratch
	d.prof.TraceScratch = nil
	if ts != nil {
		// Recycled traces: the caller surrendered last run's artefacts, so
		// their slice header is reusable storage too (alloc-free fork loop).
		d.ClusterTraces = ts[:0]
	} else {
		// No scratch means the previous run's artefacts may still be alive,
		// and RunArtifacts.Clusters aliases this very slice — truncating it
		// in place would swap the new run's traces under the retained one.
		d.ClusterTraces = make([]*trace.ClusterTraces, 0, len(spec.Clusters))
	}
	for i, cl := range d.SoC.Clusters() {
		var ct *trace.ClusterTraces
		if i < len(ts) && ts[i] != nil {
			ct = ts[i]
			ct.Reset()
			ct.Name = cl.Name()
		} else {
			ct = trace.NewClusterTraces(cl.Name(), busyStep)
		}
		ct.Freq.Append(0, cl.OPPIndex())
		// The cluster fills the busy grid itself as it settles; the samples
		// come back into ct.Busy via FinishTraces after the run window.
		cl.StartBusyGrid(busyStep, ct.Busy.Cum[:0])
		ct.Busy.Cum = nil
		d.ClusterTraces = append(d.ClusterTraces, ct)
	}
	d.FreqTrace = d.ClusterTraces[0].Freq

	d.Govs = append(d.Govs[:0], govs...)
	d.Gov = govs[0]
	for i, gov := range govs {
		if gov != nil {
			gov.Start(d.SoC.Cluster(i))
		}
	}
	d.sealThermal()
	// Battery-age caps go in after sealThermal: the throttle-trace hook only
	// exists once the zones are up, so applying caps earlier would make the
	// first Seal's traces differ from a re-Seal's.
	for i, cl := range d.SoC.Clusters() {
		if i < len(d.prof.FreqCaps) && d.prof.FreqCaps[i] >= 0 {
			cl.SetFreqCap("battery", d.prof.FreqCaps[i])
		}
	}
	// Arm the vsync chain before the launcher enters: vsyncOn suppresses the
	// on-demand re-arm in SetAnimating, so an Enter that starts an animation
	// rides the t=0 tick scheduled below instead of starting a second chain.
	d.vsyncOn = true
	d.foreground = d.launcher
	d.foreground.Enter(nil)
	d.dirty = true
	d.Eng.AtFunc(0, d.vsyncFn)
	d.Eng.AfterFunc(sim.Duration(sim.Minute), d.minuteFn)
}

// FinishTraces materialises the lazily-sampled busy grids into the run's
// trace series: each cluster's curve plus the SoC aggregate (their
// elementwise sum, exactly what the retired 30 Hz sampling tick collected).
// Replay runners call it once after the run window has fully executed, with
// the engine clock standing at the window.
func (d *Device) FinishTraces(window sim.Duration) {
	until := sim.Time(window)
	agg := d.BusyCurve.Cum[:0]
	for i, ct := range d.ClusterTraces {
		g := d.SoC.Cluster(i).FinishBusyGrid(until)
		ct.Busy.Cum = g
		if i == 0 {
			agg = append(agg, g...)
		} else {
			for j, v := range g {
				agg[j] += v
			}
		}
	}
	d.BusyCurve.Cum = agg
}

// bindTicks creates the periodic tick closures once per boot. Each closure
// reads its cadence counter from the device, so a checkpoint restore rewinds
// the tick phase along with everything else, and re-binding is never needed.
func (d *Device) bindTicks() {
	// vsync: charges animation work and keeps animated content invalidated.
	// The chain is demand driven — with no animation active the tick lets
	// itself die instead of burning an engine event every 33 ms for the whole
	// window (busy-curve sampling happens inside cluster accounting now);
	// SetAnimating re-arms it on the next grid instant. Ticks only ever fire
	// on multiples of busyStep, so rescheduling stays on the grid.
	d.vsyncFn = func() {
		if !d.animating() {
			d.vsyncOn = false
			return
		}
		d.SpawnWork("ui.anim", d.prof.AnimFrameWork, nil)
		d.markDirty()
		d.Eng.AtFunc(d.Eng.Now().Add(busyStep), d.vsyncFn)
	}
	// Minute clock: invalidates the screen at each minute boundary so the
	// status bar clock advances — the content the paper's Fig. 8 masks.
	d.minuteFn = func() {
		d.markDirty()
		d.Eng.AfterFunc(sim.Duration(sim.Minute), d.minuteFn)
	}
	d.thermalFn = func() {
		d.thermalTick(d.thermalPeriod)
		d.thermalN++
		d.Eng.AtFunc(sim.Time(int64(d.thermalN+1)*int64(d.thermalPeriod)), d.thermalFn)
	}
}

// sealThermal brings up one RC thermal zone and throttler per cluster and
// starts the periodic thermal tick. Heat input is the cluster's mean dynamic
// power over each tick window, computed from the calibrated per-cluster
// power model exactly the way energy accounting integrates it. Throttler
// verdicts feed the cluster's frequency-cap arbiter under the "thermal"
// source; cap transitions land in the per-cluster throttle trace. On a
// re-Seal the zones and throttlers already exist and are Reset in place.
func (d *Device) sealThermal() {
	cfg := d.prof.Thermal
	if !cfg.Enabled() {
		return
	}
	if err := cfg.Validate(d.SoC.NumClusters()); err != nil {
		panic(fmt.Sprintf("device: %v", err))
	}
	d.thermalN = 0
	d.thermalPeriod = cfg.Tick()
	if d.Zones == nil {
		model := d.prof.ThermalPower
		if model == nil {
			var err error
			if model, err = d.SoC.Spec().Calibrate(0); err != nil {
				panic(fmt.Sprintf("device: thermal calibration: %v", err))
			}
		} else if len(model.Models) != d.SoC.NumClusters() {
			panic(fmt.Sprintf("device: thermal power model covers %d clusters, spec has %d",
				len(model.Models), d.SoC.NumClusters()))
		}
		d.Power = model
		d.prevBusy = make([][]sim.Duration, d.SoC.NumClusters())
		d.busyScratch = make([][]sim.Duration, d.SoC.NumClusters())
		d.riseScratch = make([]float64, d.SoC.NumClusters())
		for i := range d.prevBusy {
			n := len(d.SoC.Cluster(i).Table())
			d.prevBusy[i] = make([]sim.Duration, n)
			d.busyScratch[i] = make([]sim.Duration, n)
		}
		for i, zc := range cfg.Zones {
			d.Zones = append(d.Zones, thermal.NewZone(zc.Zone))
			cl := d.SoC.Cluster(i)
			th := thermal.NewThrottler(zc.Throttle, len(cl.Table())-1)
			d.throttlers = append(d.throttlers, th)
			// Like OnFreqChange, the hook reads the trace set at call time.
			i := i
			cl.OnCapChange = func(at sim.Time, capIdx int, capped bool) {
				d.ClusterTraces[i].Throttle.Append(at, capIdx, capped)
			}
		}
	} else {
		for i := range d.Zones {
			d.Zones[i].Reset()
			d.throttlers[i].Reset()
			for k := range d.prevBusy[i] {
				d.prevBusy[i][k] = 0
			}
		}
	}
	for i := range d.Zones {
		d.ClusterTraces[i].Temp.Append(0, d.Zones[i].TempC())
	}
	d.Eng.AtFunc(sim.Time(d.thermalPeriod), d.thermalFn)
}

// thermalTick advances every zone by one period and evaluates throttling.
func (d *Device) thermalTick(period sim.Duration) {
	now := d.Eng.Now()
	// Snapshot rises first so cross-cluster coupling is order-independent
	// within the tick.
	rises := d.riseScratch
	for i, z := range d.Zones {
		rises[i] = z.RiseC()
	}
	for i, z := range d.Zones {
		cl := d.SoC.Cluster(i)
		// Mean dynamic power over the tick window, integrated from the
		// per-OPP busy delta since the previous tick — the same integral
		// energy accounting uses, without re-walking history or allocating.
		cur := cl.CopyBusyByOPP(d.busyScratch[i])
		var heatJ float64
		dyn := d.Power.Cluster(i).DynW
		for k, b := range cur {
			heatJ += dyn[k] * (b - d.prevBusy[i][k]).Seconds()
		}
		d.prevBusy[i], d.busyScratch[i] = cur, d.prevBusy[i]
		powerW := heatJ / period.Seconds()
		var coupleC float64
		if len(d.Zones) > 1 {
			var sum float64
			for j, r := range rises {
				if j != i {
					sum += r
				}
			}
			coupleC = z.Params().CouplingFrac * sum / float64(len(d.Zones)-1)
		}
		temp := z.Step(period, powerW, coupleC)
		d.ClusterTraces[i].Temp.Append(now, temp)
		if th := d.throttlers[i]; th.Enabled() {
			if capIdx, changed := th.Update(temp); changed {
				if th.Throttled() {
					cl.SetFreqCap("thermal", capIdx)
				} else {
					cl.ClearFreqCap("thermal")
				}
			}
		}
	}
}

func (d *Device) installApps() {
	register := func(a apps.App) {
		a.Init(d)
		d.appsByName[a.Name()] = a
		d.appOrder = append(d.appOrder, a.Name())
	}
	register(apps.NewGallery())
	register(apps.NewLogoQuiz())
	register(apps.NewPulseNews())
	register(apps.NewMessaging())
	register(apps.NewMovieStudio())
	register(apps.NewFacebook())
	register(apps.NewGmail())
	register(apps.NewMusicPlayer(d.music))
	register(apps.NewCalculator())
	register(apps.NewPlayStore())
	register(apps.NewBrowser())
	register(apps.NewRetroRunner())
	d.launcher = apps.NewLauncher(d.appOrder)
	d.launcher.Init(d)
	d.appsByName[d.launcher.Name()] = d.launcher
}

func (d *Device) startServices() {
	d.svcs = append(d.svcs[:0], d.music)
	if d.prof.NewsSync {
		d.svcs = append(d.svcs, apps.NewNewsSyncService(d.prof.NewsSyncEvery))
	}
	if d.prof.AccountSync {
		d.svcs = append(d.svcs, apps.NewAccountSyncService(d.prof.AccountEvery))
	}
	if d.prof.Telemetry {
		d.svcs = append(d.svcs, apps.NewTelemetryService())
	}
	for _, mk := range d.prof.ExtraServices {
		d.svcs = append(d.svcs, mk())
	}
	for _, s := range d.svcs {
		s.Start(d)
	}
}

// ReserveTraces pre-sizes every trace series for a run of the given
// wall-clock window, so the periodic samplers (vsync busy curve, thermal
// tick) append without reallocating for the whole run. Callers that know
// their window (the replay runner does) call this right after boot.
func (d *Device) ReserveTraces(window sim.Duration) {
	if window <= 0 {
		return
	}
	if d.BusyCurve.Step > 0 {
		d.BusyCurve.Reserve(int(window/d.BusyCurve.Step) + 2)
	}
	tick := sim.Duration(0)
	if d.prof.Thermal.Enabled() {
		tick = d.prof.Thermal.Tick()
	}
	for i, ct := range d.ClusterTraces {
		if tick > 0 {
			ct.Temp.Reserve(int(window/tick) + 2)
		}
		// During the run the busy samples accrue in the cluster's lazily
		// filled grid (Seal hands it the storage; FinishTraces returns the
		// series to ct.Busy), so the busy reservation belongs there — ct.Busy
		// itself is empty until the run ends.
		d.SoC.Cluster(i).ReserveBusyGrid(int(window/busyStep) + 2)
	}
}

// SnapshotIdle copies every idle-enabled cluster's residency counters into
// its ClusterTraces.Idle: per-state residency, wake and mispredict counts,
// wake-stall and active-wall time. Unlike the event traces, which accumulate
// as the run executes, the idle numbers are counters inside soc.Cluster;
// replay runners call this once after the run window so the artefacts carry
// them. Clusters without a ladder keep an empty IdleTrace.
func (d *Device) SnapshotIdle() {
	for i, cl := range d.SoC.Clusters() {
		if !cl.IdleEnabled() {
			continue
		}
		it := d.ClusterTraces[i].Idle
		it.States = it.States[:0]
		for _, st := range cl.IdleStates() {
			it.States = append(it.States, st.Name)
		}
		it.Residency = cl.CopyIdleResidency(it.Residency)
		it.Wakes = cl.IdleWakes()
		it.Mispredicts = cl.IdleMispredicts()
		it.StallTime = cl.IdleStallTime()
		it.ActiveTime = cl.ActiveWallTime()
	}
}

// SetFramePool redirects frame capture to a recycled pool (or back to fresh
// allocation with nil). Replay sessions call it before each Seal so one
// booted device can serve sweeps that pool frames and callers that keep them.
func (d *Device) SetFramePool(p *video.FramePool) { d.prof.FramePool = p }

// SetTraceScratch hands recycled per-cluster trace storage to the next Seal,
// which consumes it (see Profile.TraceScratch). Without it every Seal
// allocates fresh traces, which is what lets callers retain run artefacts.
func (d *Device) SetTraceScratch(ts []*trace.ClusterTraces) { d.prof.TraceScratch = ts }

// SetBusyScratch hands a recycled SoC-aggregate busy curve to the next Seal,
// which consumes it. Only callers that do not retain the run's BusyCurve
// (e.g. the checkpoint allocation gate) should use this.
func (d *Device) SetBusyScratch(c *trace.BusyCurve) { d.busyCurveScratch = c }

// App returns a registered app by name (nil if unknown).
func (d *Device) App(name string) apps.App { return d.appsByName[name] }

// Launcher returns the home screen app.
func (d *Device) Launcher() *apps.Launcher { return d.launcher }

// Foreground returns the current foreground app.
func (d *Device) Foreground() apps.App { return d.foreground }

// GroundTruths returns the per-gesture ground truth recorded so far.
func (d *Device) GroundTruths() []GroundTruth { return d.truths }

// ---- apps.Host implementation ----

// Now implements apps.Host.
func (d *Device) Now() sim.Time { return d.Eng.Now() }

// Rand implements apps.Host.
func (d *Device) Rand() *sim.Rand { return d.rand }

// After implements apps.Host. The callback goes to the engine as-is, so a
// service loop that reschedules one pre-bound func value never allocates.
func (d *Device) After(dur sim.Duration, fn func()) {
	d.Eng.AfterFunc(dur, fn)
}

// SpawnWork implements apps.Host, applying the per-repetition work jitter.
// Fire-and-forget bursts (nil onDone — every animation frame, every
// background service tick) submit without a completion wrapper.
func (d *Device) SpawnWork(name string, cycles int64, onDone func()) {
	jittered := int64(sim.Duration(cycles))
	if d.prof.WorkJitterFrac > 0 {
		jittered = int64(d.rand.JitterFrac(sim.Duration(cycles), d.prof.WorkJitterFrac))
	}
	if jittered < 1 {
		jittered = 1
	}
	if onDone == nil {
		d.SoC.Submit(name, soc.Cycles(jittered), nil)
		return
	}
	d.SoC.Submit(name, soc.Cycles(jittered), func(sim.Time) { onDone() })
}

// SpawnIO implements apps.Host, applying the per-repetition IO jitter. With
// a network proxy configured, the jittered latency is recorded or replaced
// by the recorded one, making IO deterministic across runs.
func (d *Device) SpawnIO(name string, dur sim.Duration, onDone func()) {
	jittered := d.rand.JitterFrac(dur, d.prof.IOJitterFrac)
	if d.prof.NetProxy != nil {
		jittered = d.prof.NetProxy.Access(name, jittered)
	}
	if onDone == nil {
		return
	}
	d.Eng.AfterFunc(jittered, onDone)
}

// Invalidate implements apps.Host.
func (d *Device) Invalidate() { d.markDirty() }

// Dirty reports whether screen content changed since the last Frame render.
func (d *Device) Dirty() bool { return d.dirty }

// markDirty flips the clean→dirty transition and notifies OnDirty. The hook
// fires before the flag is set, so an observer (the demand-driven video
// recorder) can still read the pre-change content for the capture instants
// it slept through.
func (d *Device) markDirty() {
	if d.dirty {
		return
	}
	if d.OnDirty != nil {
		d.OnDirty()
	}
	d.dirty = true
}

// SetAnimating implements apps.Host. Starting an animation re-arms the
// demand-driven vsync chain on the next grid instant strictly after now —
// matching the always-on tick, whose same-instant firing preceded the event
// that set the flag and so never charged animation work at the set instant.
func (d *Device) SetAnimating(token string, on bool) {
	if on {
		if !d.vsyncOn {
			d.vsyncOn = true
			next := (int64(d.Eng.Now())/int64(busyStep) + 1) * int64(busyStep)
			d.Eng.AtFunc(sim.Time(next), d.vsyncFn)
		}
		d.anims[token] = true
	} else {
		delete(d.anims, token)
	}
	d.markDirty()
}

func (d *Device) animating() bool { return len(d.anims) > 0 }

// Launch implements apps.Host: switch the foreground app, handing it the
// in-flight launch interaction.
func (d *Device) Launch(name string, ix *apps.Interaction) {
	a, ok := d.appsByName[name]
	if !ok {
		if ix != nil {
			ix.Finish()
		}
		return
	}
	d.foreground = a
	d.markDirty()
	a.Enter(ix)
}

// InteractionStarted implements apps.Host: binds the interaction to the
// gesture currently being dispatched.
func (d *Device) InteractionStarted(label string, class core.HCIClass) int {
	idx := d.dispatchIdx
	if idx < 0 {
		// An interaction outside gesture dispatch (not used by the standard
		// apps, but kept total): synthesize a gesture-less entry.
		idx = len(d.truths)
		d.truths = append(d.truths, GroundTruth{Index: idx, InputTime: d.Eng.Now(), DispatchTime: d.Eng.Now()})
	}
	gt := &d.truths[idx]
	gt.Label = label
	gt.Class = class
	return idx
}

// InteractionFinished implements apps.Host: the ground-truth "input
// serviced" instant. The ground-truth log owns finish idempotence — it is
// checkpointed state, so a fork that rewinds the log lets replayed
// interaction chains finish again in the new timeline.
func (d *Device) InteractionFinished(id int) bool {
	if id < 0 || id >= len(d.truths) {
		return false
	}
	gt := &d.truths[id]
	if gt.Complete {
		return false
	}
	gt.Complete = true
	gt.CompleteTime = d.Eng.Now()
	gt.MaskRects = d.foreground.VolatileRects()
	if d.OnInteraction != nil {
		d.OnInteraction(*gt)
	}
	return true
}

// ---- input pipeline ----

// Subscribe registers an input-event observer (the getevent recorder).
func (d *Device) Subscribe(fn func(evdev.Event)) {
	d.subscribers = append(d.subscribers, fn)
}

// Inject delivers one evdev event to the device at the current virtual time,
// as the kernel input layer would. The interactive governor's input boost
// fires here, before any UI work happens.
func (d *Device) Inject(ev evdev.Event) {
	ev.Time = d.Eng.Now()
	for _, fn := range d.subscribers {
		fn(ev)
	}
	if !ev.IsSyn() {
		for _, gov := range d.Govs {
			if gov != nil {
				gov.OnInput(ev.Time)
			}
		}
	}
	d.assemble(ev)
}

// assemble reassembles gestures from the event stream (mirror of
// evdev.Classify, but online).
func (d *Device) assemble(ev evdev.Event) {
	if ev.Type != evdev.EVAbs {
		return
	}
	switch ev.Code {
	case evdev.AbsMTTrackingID:
		if ev.Value == evdev.TrackingRelease {
			if g := d.curGesture; g != nil {
				g.Duration = ev.Time.Sub(g.Start)
				d.curGesture = nil
				d.dispatch(*g)
			}
		} else {
			d.curGesture = &evdev.Gesture{Start: ev.Time}
			d.gotX, d.gotY = false, false
		}
	case evdev.AbsMTPositionX:
		if d.curGesture == nil {
			return
		}
		d.curGesture.X1 = int(ev.Value)
		if !d.gotX {
			d.curGesture.X0 = int(ev.Value)
			d.gotX = true
		}
	case evdev.AbsMTPositionY:
		if d.curGesture == nil {
			return
		}
		d.curGesture.Y1 = int(ev.Value)
		if !d.gotY {
			d.curGesture.Y0 = int(ev.Value)
			d.gotY = true
		}
	}
}

// dispatch routes a completed gesture to the nav bar or the foreground app
// and opens its ground-truth record.
func (d *Device) dispatch(g evdev.Gesture) {
	dx, dy := g.X1-g.X0, g.Y1-g.Y0
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	kind := evdev.Tap
	if dx > 24 || dy > 24 {
		kind = evdev.Swipe
	}

	idx := len(d.truths)
	d.truths = append(d.truths, GroundTruth{
		Index:        idx,
		Kind:         kind,
		InputTime:    g.Start,
		DispatchTime: d.Eng.Now(),
	})
	d.dispatchIdx = idx

	var handled bool
	switch {
	case kind == evdev.Tap && screen.HomeButtonRect.Contains(g.X0, g.Y0):
		handled = d.goHome()
	case kind == evdev.Tap && screen.BackButtonRect.Contains(g.X0, g.Y0):
		handled = d.foreground.HandleBack()
	case kind == evdev.Tap:
		handled = d.foreground.HandleTap(g.X0, g.Y0)
	default:
		handled = d.foreground.HandleSwipe(g.X0, g.Y0, g.X1, g.Y1)
	}
	d.dispatchIdx = -1

	gt := &d.truths[idx]
	if !handled && gt.Label == "" {
		gt.Spurious = true
		gt.Complete = true
		gt.CompleteTime = d.Eng.Now()
		if d.OnInteraction != nil {
			d.OnInteraction(*gt)
		}
		return
	}
	if handled && gt.Label == "" {
		// Handled without starting work: visible immediately.
		gt.Label = "instant"
		gt.Complete = true
		gt.CompleteTime = d.Eng.Now()
		gt.MaskRects = d.foreground.VolatileRects()
		if d.OnInteraction != nil {
			d.OnInteraction(*gt)
		}
	}
}

func (d *Device) goHome() bool {
	if d.foreground == d.launcher {
		return false
	}
	ix := apps.BeginInteraction(d, "nav.home", core.SimpleFrequent)
	from := d.foreground
	_ = from
	d.SpawnWork("nav.home", apps.CostTinyUI, func() {
		d.foreground = d.launcher
		d.markDirty()
		d.launcher.Enter(ix)
	})
	return true
}

// ---- rendering and capture ----

// Frame renders (if needed) and returns the current screen frame; this is
// the HDMI output the video recorder captures. The capture path is
// zero-copy for unchanged content: a dirty flag alone does not allocate —
// the rendered framebuffer is compared against the previously captured
// frame and only an actual pixel change clones (from the profile's frame
// pool when one is set). Returning the identical *Frame for identical
// content also lets the video's run-length encoder extend runs on pointer
// identity without ever comparing pixels.
func (d *Device) Frame() *video.Frame {
	if !d.dirty && d.cached != nil {
		return d.cached
	}
	d.fb.Fill(screen.ShadeBackground)
	d.foreground.Render(&d.fb, d.Eng.Now())
	screen.DrawStatusBar(&d.fb, d.Eng.Now())
	screen.DrawNavBar(&d.fb)
	d.dirty = false
	if d.cached != nil && d.cached.EqualPix(d.fb.Pix[:]) {
		return d.cached
	}
	if d.prof.FramePool != nil {
		d.cached = d.prof.FramePool.Capture(d.fb.Pix[:])
	} else {
		d.cached = video.NewFrame(d.fb.Clone())
	}
	return d.cached
}

// String summarises device state.
func (d *Device) String() string {
	return fmt.Sprintf("device.Device{fg=%s, %s}", d.foreground.Name(), d.SoC)
}
