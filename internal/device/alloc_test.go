package device

import (
	"testing"

	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
)

// TestThermalTickAllocFree gates the thermal hot path: with trace capacity
// reserved for the run window, one 100 ms thermal tick — per-cluster busy
// delta, power integration, RC zone step, cross-cluster coupling,
// temperature trace append — performs zero heap allocations on a warm
// device. The tick runs 10 times per simulated second on every
// thermal-enabled replay of a sweep.
func TestThermalTickAllocFree(t *testing.T) {
	prof := Profile{
		SoC:     soc.BigLittle44(),
		Thermal: thermal.PhoneConfig(2, 0, 0), // record-only zones: trace temps, never cap
	}
	model, err := prof.SoC.Calibrate(0)
	if err != nil {
		t.Fatal(err)
	}
	prof.ThermalPower = model
	eng := sim.NewEngine()
	// Nil governors: clusters idle at their lowest OPP, isolating the
	// thermal tick from the governor sample path (gated separately in soc).
	dev := NewMulti(eng, 1, []governor.Governor{nil, nil}, prof)
	dev.ReserveTraces(20 * sim.Second)

	// Warm up past boot transients (service start, first samples).
	eng.RunUntil(sim.Time(2 * sim.Second))

	next := eng.Now()
	if avg := testing.AllocsPerRun(50, func() {
		next = next.Add(100 * sim.Millisecond)
		eng.RunUntil(next)
	}); avg != 0 {
		t.Fatalf("one warm thermal tick window allocates %.2f, want 0", avg)
	}
	// The tick must actually have run and traced temperatures.
	if dev.ClusterTraces[0].Temp.Len() < 50 {
		t.Fatalf("thermal tick did not run: %d temp samples", dev.ClusterTraces[0].Temp.Len())
	}
}

// TestFrameCaptureNoAllocWhenUnchanged pins the zero-copy capture property:
// a dirty flag whose re-render produces identical pixels returns the cached
// frame without cloning, and the video extends its run on pointer identity.
func TestFrameCaptureNoAllocWhenUnchanged(t *testing.T) {
	eng := sim.NewEngine()
	dev := New(eng, 1, governor.NewOndemand(), Profile{})
	eng.RunUntil(sim.Time(sim.Second))

	first := dev.Frame()
	// Invalidate without changing content: same app, same screen, same
	// minute on the clock.
	dev.Invalidate()
	if avg := testing.AllocsPerRun(20, func() {
		dev.Invalidate()
		if f := dev.Frame(); f != first {
			t.Fatal("unchanged re-render returned a new frame")
		}
	}); avg != 0 {
		t.Fatalf("unchanged dirty capture allocates %.2f, want 0", avg)
	}
}
