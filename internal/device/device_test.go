package device

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/sim"
	"repro/internal/video"
)

func bootDevice(gov governor.Governor) (*sim.Engine, *Device) {
	eng := sim.NewEngine()
	d := New(eng, 42, gov, DefaultProfile())
	return eng, d
}

// tapAt injects a full tap gesture at the given time and position.
func tapAt(d *Device, at sim.Time, x, y int) {
	enc := evdev.NewEncoder()
	for _, ev := range enc.EncodeTap(at, x, y) {
		ev := ev
		d.Eng.At(ev.Time, func(*sim.Engine) { d.Inject(ev) })
	}
}

func TestBootShowsLauncher(t *testing.T) {
	eng, d := bootDevice(governor.NewOndemand())
	eng.RunUntil(sim.Time(100 * sim.Millisecond))
	if d.Foreground().Name() != apps.LauncherName {
		t.Fatalf("foreground = %s, want launcher", d.Foreground().Name())
	}
	if d.Frame() == nil {
		t.Fatal("no frame rendered")
	}
}

func TestLaunchInteractionGroundTruth(t *testing.T) {
	eng, d := bootDevice(governor.NewInteractive())
	r, ok := d.Launcher().IconRect(apps.GalleryName)
	if !ok {
		t.Fatal("gallery icon missing")
	}
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(30 * sim.Second))

	gts := d.GroundTruths()
	if len(gts) != 1 {
		t.Fatalf("ground truths = %d, want 1", len(gts))
	}
	gt := gts[0]
	if gt.Spurious {
		t.Fatal("launch tap classified spurious")
	}
	if gt.Label != "launcher.launch.gallery" {
		t.Fatalf("label = %q", gt.Label)
	}
	if !gt.Complete {
		t.Fatal("launch interaction never completed")
	}
	if gt.InputTime != sim.Time(sim.Second) {
		t.Fatalf("input time = %v, want 1s", gt.InputTime)
	}
	lag := gt.CompleteTime.Sub(gt.InputTime)
	if lag < 100*sim.Millisecond || lag > 10*sim.Second {
		t.Fatalf("launch lag = %v, outside plausible range", lag)
	}
	if d.Foreground().Name() != apps.GalleryName {
		t.Fatalf("foreground = %s after launch", d.Foreground().Name())
	}
}

func TestSpuriousTapDetected(t *testing.T) {
	eng, d := bootDevice(governor.NewOndemand())
	// Tap wallpaper between icons: the paper's "taps next to a button".
	tapAt(d, sim.Time(sim.Second), screen_LogicalW-20, screen_LogicalH/2)
	eng.RunUntil(sim.Time(3 * sim.Second))
	gts := d.GroundTruths()
	if len(gts) != 1 || !gts[0].Spurious {
		t.Fatalf("expected one spurious ground truth, got %+v", gts)
	}
}

// local aliases to keep the test readable without importing screen broadly
const (
	screen_LogicalW = 1080
	screen_LogicalH = 1920
)

func TestLaunchIsSlowerAtLowFrequency(t *testing.T) {
	lagAt := func(idx int) sim.Duration {
		eng := sim.NewEngine()
		d := New(eng, 7, governor.NewFixed(powerTable(), idx), DefaultProfile())
		r, _ := d.Launcher().IconRect(apps.GalleryName)
		cx, cy := r.Center()
		tapAt(d, sim.Time(sim.Second), cx, cy)
		eng.RunUntil(sim.Time(60 * sim.Second))
		gts := d.GroundTruths()
		if len(gts) != 1 || !gts[0].Complete {
			t.Fatalf("launch did not complete at OPP %d", idx)
		}
		return gts[0].CompleteTime.Sub(gts[0].InputTime)
	}
	slow := lagAt(0)
	fast := lagAt(13)
	if slow < 4*fast {
		t.Fatalf("launch lag at 0.30 GHz (%v) should be several times 2.15 GHz (%v)", slow, fast)
	}
	// Order of magnitude check against the paper's Fig. 7: ~6 s at 0.30 GHz.
	if slow < 3*sim.Second || slow > 12*sim.Second {
		t.Fatalf("cold launch at 0.30 GHz = %v, want roughly 6s", slow)
	}
}

func TestFrameChangesDuringLoadThenStill(t *testing.T) {
	eng, d := bootDevice(governor.NewFixed(powerTable(), 5))
	rec := video.NewRecorder(eng, 30, d.Frame)
	rec.Start()
	r, _ := d.Launcher().IconRect(apps.GalleryName)
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(20 * sim.Second))
	v := rec.Video()
	if v.DistinctFrames() < 10 {
		t.Fatalf("launch produced %d distinct frames; progressive loading missing", v.DistinctFrames())
	}
	// After completion the screen must be still: the last run must span the
	// tail of the video (minus the minute-boundary clock change).
	runs := v.Runs()
	lastRun := runs[len(runs)-1]
	if lastRun.Count < 30 {
		t.Fatalf("video tail not still: last run %d frames", lastRun.Count)
	}
}

func TestDeterministicReplaySameSeed(t *testing.T) {
	run := func() []GroundTruth {
		eng := sim.NewEngine()
		d := New(eng, 99, governor.NewOndemand(), DefaultProfile())
		r, _ := d.Launcher().IconRect(apps.CalculatorName)
		cx, cy := r.Center()
		tapAt(d, sim.Time(sim.Second), cx, cy)
		tapAt(d, sim.Time(15*sim.Second), cx, cy) // spurious: calculator now foreground
		eng.RunUntil(sim.Time(20 * sim.Second))
		return d.GroundTruths()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].CompleteTime != b[i].CompleteTime || a[i].Spurious != b[i].Spurious {
			t.Fatalf("ground truth %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestDifferentSeedsDifferSlightly(t *testing.T) {
	run := func(seed uint64) sim.Duration {
		eng := sim.NewEngine()
		d := New(eng, seed, governor.NewOndemand(), DefaultProfile())
		r, _ := d.Launcher().IconRect(apps.PulseNewsName)
		cx, cy := r.Center()
		tapAt(d, sim.Time(sim.Second), cx, cy)
		eng.RunUntil(sim.Time(40 * sim.Second))
		gts := d.GroundTruths()
		if len(gts) != 1 || !gts[0].Complete {
			t.Fatal("launch did not complete")
		}
		return gts[0].CompleteTime.Sub(gts[0].InputTime)
	}
	a, b := run(1), run(2)
	if a == b {
		t.Fatal("different seeds produced identical lag; repetition noise missing")
	}
	diff := float64(a-b) / float64(a)
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.35 {
		t.Fatalf("seed noise too large: %v vs %v", a, b)
	}
}

func TestFreqTraceRecorded(t *testing.T) {
	eng, d := bootDevice(governor.NewOndemand())
	r, _ := d.Launcher().IconRect(apps.GalleryName)
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(20 * sim.Second))
	d.FinishTraces(20 * sim.Second)
	if d.FreqTrace.TransitionCount() < 3 {
		t.Fatalf("only %d DVFS transitions recorded under ondemand with a launch burst", d.FreqTrace.TransitionCount())
	}
	if d.BusyCurve.Total() <= 0 {
		t.Fatal("busy curve empty")
	}
}

func TestClockInvalidatesEachMinute(t *testing.T) {
	eng, d := bootDevice(governor.NewFixed(powerTable(), 5))
	rec := video.NewRecorder(eng, 30, d.Frame)
	rec.Start()
	eng.RunUntil(sim.Time(3 * sim.Minute).Add(5 * sim.Second))
	v := rec.Video()
	// With zero interactions, the only changes are minute-boundary clock
	// updates: at least 3 distinct frames (plus initial).
	if v.DistinctFrames() < 3 {
		t.Fatalf("clock updates missing: %d distinct frames over 3 minutes", v.DistinctFrames())
	}
	if v.DistinctFrames() > 10 {
		t.Fatalf("too many distinct frames (%d) for an idle device", v.DistinctFrames())
	}
}

func TestHomeButtonReturnsToLauncher(t *testing.T) {
	eng, d := bootDevice(governor.NewInteractive())
	r, _ := d.Launcher().IconRect(apps.CalculatorName)
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(10 * sim.Second))
	if d.Foreground().Name() != apps.CalculatorName {
		t.Fatal("calculator not launched")
	}
	hx, hy := homeCenter()
	tapAt(d, sim.Time(11*sim.Second), hx, hy)
	eng.RunUntil(sim.Time(15 * sim.Second))
	if d.Foreground().Name() != apps.LauncherName {
		t.Fatalf("foreground = %s after home tap", d.Foreground().Name())
	}
	gts := d.GroundTruths()
	last := gts[len(gts)-1]
	if last.Label != "nav.home" || !last.Complete {
		t.Fatalf("home interaction ground truth: %+v", last)
	}
}
