package device_test

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/trace"
)

// stateDigest hashes everything a mid-run checkpoint must reproduce after a
// restore-and-rerun: per-cluster frequency/busy/temperature/throttle traces,
// per-OPP busy histograms, idle counters, migrations and ground truth. Values
// are digested immediately — the underlying buffers are rewound in place by
// the next Restore.
func stateDigest(d *device.Device, window sim.Duration) string {
	d.FinishTraces(window)
	d.SnapshotIdle()
	h := sha256.New()
	for ci, ct := range d.ClusterTraces {
		fmt.Fprintf(h, "c%d;", ci)
		for _, p := range ct.Freq.Points {
			fmt.Fprintf(h, "%d:%d;", p.At, p.OPPIndex)
		}
		for _, c := range ct.Busy.Cum {
			fmt.Fprintf(h, "%d.", c)
		}
		if ct.Temp != nil {
			for _, p := range ct.Temp.Points {
				fmt.Fprintf(h, "t%d=%.6f;", p.At, p.TempC)
			}
		}
		if ct.Throttle != nil {
			for _, e := range ct.Throttle.Events {
				fmt.Fprintf(h, "th%d:%d:%v;", e.At, e.CapIndex, e.Throttled)
			}
		}
		if ct.Idle != nil {
			for k, st := range ct.Idle.States {
				fmt.Fprintf(h, "i%s=%d;", st, ct.Idle.Residency[k])
			}
			fmt.Fprintf(h, "w%d,m%d,s%d,a%d;", ct.Idle.Wakes, ct.Idle.Mispredicts,
				int64(ct.Idle.StallTime), int64(ct.Idle.ActiveTime))
		}
	}
	for ci, hist := range d.SoC.BusyByCluster() {
		fmt.Fprintf(h, "b%d:%v;", ci, hist)
	}
	fmt.Fprintf(h, "mig%d;", d.SoC.Migrations())
	for _, gt := range d.GroundTruths() {
		fmt.Fprintf(h, "g%+v;", gt)
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:12])
}

// TestMidRunRestoreAfterRestore pins the reusability of one mid-run
// checkpoint: restore → run to the end → restore the SAME checkpoint again →
// run again, twice over, each continuation bit-for-bit identical to the
// original. A checkpoint must be a pure value the device can rewind to any
// number of times, not a one-shot ticket.
func TestMidRunRestoreAfterRestore(t *testing.T) {
	eng := sim.NewEngine()
	d := device.New(eng, 42, governor.NewOndemand(), device.DefaultProfile())
	d.ReserveTraces(20 * sim.Second)
	// A tap scheduled before the checkpoint but landing after it: the event
	// lives in the snapshotted engine queue and must replay on every rerun.
	r, ok := d.Launcher().IconRect(apps.GalleryName)
	if !ok {
		t.Fatal("gallery icon missing")
	}
	cx, cy := r.Center()
	tapAt(t, d, sim.Time(6*sim.Second), cx, cy)

	eng.RunUntil(sim.Time(5 * sim.Second)) // quiescent: tap not yet injected
	cp := d.Checkpoint(nil)

	eng.RunUntil(sim.Time(20 * sim.Second))
	want := stateDigest(d, 20*sim.Second)

	for leg := 1; leg <= 2; leg++ {
		d.Restore(cp)
		if eng.Now() != sim.Time(5*sim.Second) {
			t.Fatalf("leg %d: restored clock = %v, want 5s", leg, eng.Now())
		}
		eng.RunUntil(sim.Time(20 * sim.Second))
		if got := stateDigest(d, 20*sim.Second); got != want {
			t.Fatalf("leg %d: continuation digest %s, want %s", leg, got, want)
		}
	}
}

// TestCheckpointMidTaskOffGrid checkpoints at an instant that is neither a
// busy-grid boundary nor a task boundary: a CPU burst is mid-execution, so
// the snapshot must capture fractional busy accrual (lastSettle inside a grid
// step), the running task's remaining cycles and its slice deadline.
func TestCheckpointMidTaskOffGrid(t *testing.T) {
	eng := sim.NewEngine()
	prof := device.DefaultProfile()
	d := device.New(eng, 42, governor.NewFixed(power.Snapdragon8074(), 5), prof)
	d.ReserveTraces(15 * sim.Second)

	// A long pinned burst straddling the checkpoint instant.
	d.Eng.AtFunc(sim.Time(4900*sim.Millisecond), func() {
		d.SoC.SubmitPinned(0, "burst", soc.Cycles(400_000_000), nil)
	})
	eng.RunUntil(sim.Time(5*sim.Second + 7*sim.Millisecond)) // off the 33.333 ms grid
	cp := d.Checkpoint(nil)

	eng.RunUntil(sim.Time(15 * sim.Second))
	want := stateDigest(d, 15*sim.Second)

	d.Restore(cp)
	eng.RunUntil(sim.Time(15 * sim.Second))
	if got := stateDigest(d, 15*sim.Second); got != want {
		t.Fatalf("mid-task continuation digest %s, want %s", got, want)
	}
}

// TestCheckpointMidIdleResidency checkpoints while clusters sit in a deep
// idle state with partially accrued residency. The continuation must account
// the split residency interval exactly once — the restored idleSince carries
// the pre-checkpoint share of the interval across the rewind.
func TestCheckpointMidIdleResidency(t *testing.T) {
	eng := sim.NewEngine()
	prof := device.Profile{SoC: soc.WithDefaultIdle(soc.BigLittle44())}
	d := device.NewMulti(eng, 42, []governor.Governor{nil, nil}, prof)
	d.ReserveTraces(15 * sim.Second)

	// No input: after boot transients both clusters descend the ladder.
	eng.RunUntil(sim.Time(5*sim.Second + 7*sim.Millisecond))
	cp := d.Checkpoint(nil)

	eng.RunUntil(sim.Time(15 * sim.Second))
	want := stateDigest(d, 15*sim.Second)

	d.Restore(cp)
	eng.RunUntil(sim.Time(15 * sim.Second))
	if got := stateDigest(d, 15*sim.Second); got != want {
		t.Fatalf("mid-idle continuation digest %s, want %s", got, want)
	}
}

// TestForkWithActiveThrottleCap checkpoints a thermally throttled device —
// the zone is above trip and the cap arbiter holds the cluster below its
// governor request — and requires the continuation after restore to
// reproduce the original cap walk (further downs, the recovery ups and the
// temperature trace) exactly.
func TestForkWithActiveThrottleCap(t *testing.T) {
	eng := sim.NewEngine()
	prof := device.Profile{
		SoC:     soc.BigLittle44(),
		Thermal: thermal.PhoneConfig(2, 30, 3),
	}
	govs := []governor.Governor{
		governor.Powersave(power.LittleCortex()),
		governor.Performance(power.Snapdragon8074()),
	}
	d := device.NewMulti(eng, 1, govs, prof)
	d.ReserveTraces(60 * sim.Second)
	heatBig(d, 1, 200_000_000, sim.Time(20*sim.Second))

	eng.RunUntil(sim.Time(15 * sim.Second))
	if d.ClusterTraces[1].Throttle.CapDowns() == 0 {
		t.Fatal("big cluster not throttled at checkpoint time; test premise broken")
	}
	cp := d.Checkpoint(nil)

	eng.RunUntil(sim.Time(60 * sim.Second)) // load ends at 20s; cap recovers
	want := stateDigest(d, 60*sim.Second)

	d.Restore(cp)
	eng.RunUntil(sim.Time(60 * sim.Second))
	if got := stateDigest(d, 60*sim.Second); got != want {
		t.Fatalf("throttled continuation digest %s, want %s", got, want)
	}
}

// TestForkRestoreAllocFree is the steady-state allocation gate for the sweep
// fork loop: with recycled trace scratch, a fixed governor and no capture,
// restoring the boot checkpoint, re-Sealing and running a window performs
// zero heap allocations once every pooled buffer has reached its high-water
// mark — the property that lets RunMatrix fork hundreds of runs without GC
// pressure.
func TestForkRestoreAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	prof := device.DefaultProfile()
	d := device.Boot(eng, prof)
	cp := d.Checkpoint(nil)
	govs := []governor.Governor{governor.NewFixed(power.Snapdragon8074(), 5)}

	var ts []*trace.ClusterTraces
	var bc *trace.BusyCurve
	fork := func() {
		d.Restore(cp)
		d.SetTraceScratch(ts)
		d.SetBusyScratch(bc)
		d.Seal(42, govs)
		d.ReserveTraces(3 * sim.Second)
		eng.RunUntil(sim.Time(3 * sim.Second))
		d.FinishTraces(3 * sim.Second)
		ts, bc = d.ClusterTraces, d.BusyCurve
	}
	// Warm-up forks: grow every recycled buffer to its high-water mark.
	fork()
	fork()
	if avg := testing.AllocsPerRun(10, fork); avg != 0 {
		t.Fatalf("steady-state fork+restore allocates %.1f times per run, want 0", avg)
	}
}

// tapAt injects a full tap gesture at the given time and position (external
// package variant of the device-internal test helper; heatBig is shared with
// the thermal pipeline tests in this package).
func tapAt(t *testing.T, d *device.Device, at sim.Time, x, y int) {
	t.Helper()
	enc := evdev.NewEncoder()
	for _, ev := range enc.EncodeTap(at, x, y) {
		ev := ev
		d.Eng.At(ev.Time, func(*sim.Engine) { d.Inject(ev) })
	}
}
