package device

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/governor"
	"repro/internal/netproxy"
	"repro/internal/sim"
)

// playGame boots a device, launches the game, plays for the given span, and
// returns the game app for jank inspection.
func playGame(t *testing.T, gov governor.Governor, span sim.Duration) *apps.RetroRunner {
	t.Helper()
	eng := sim.NewEngine()
	d := New(eng, 5, gov, Profile{Telemetry: true})
	r, ok := d.Launcher().IconRect(apps.RetroRunnerName)
	if !ok {
		t.Fatal("game icon missing")
	}
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(20 * sim.Second)) // cold launch settles
	if d.Foreground().Name() != apps.RetroRunnerName {
		t.Fatal("game not in foreground")
	}
	px, py := apps.GamePlayButton.Center()
	tapAt(d, sim.Time(21*sim.Second), px, py)
	eng.RunUntil(sim.Time(25 * sim.Second).Add(span))
	sx, sy := apps.GameStopButton.Center()
	tapAt(d, sim.Time(25*sim.Second).Add(span), sx, sy)
	eng.RunUntil(sim.Time(27 * sim.Second).Add(span))
	g, okApp := d.App(apps.RetroRunnerName).(*apps.RetroRunner)
	if !okApp {
		t.Fatal("game type assertion failed")
	}
	return g
}

func TestJankDecreasesWithFrequency(t *testing.T) {
	// The paper's future-work jank workload: frames dropped when the
	// processor cannot keep up. At the lowest OPP the 18M-cycle frames far
	// exceed the 33ms budget; at the top OPP they are comfortable.
	span := 10 * sim.Second
	low := playGame(t, governor.NewFixed(powerTable(), 0), span)
	mid := playGame(t, governor.NewFixed(powerTable(), 5), span)
	high := playGame(t, governor.NewFixed(powerTable(), 13), span)

	if low.TotalFrames < 200 {
		t.Fatalf("game ran only %d frames", low.TotalFrames)
	}
	if low.JankRatio() < 0.5 {
		t.Errorf("jank at 0.30 GHz = %.2f, want heavy (>0.5)", low.JankRatio())
	}
	if high.JankRatio() > 0.02 {
		t.Errorf("jank at 2.15 GHz = %.2f, want ~0", high.JankRatio())
	}
	if !(low.JankRatio() > mid.JankRatio() && mid.JankRatio() >= high.JankRatio()) {
		t.Errorf("jank not decreasing: %.2f, %.2f, %.2f",
			low.JankRatio(), mid.JankRatio(), high.JankRatio())
	}
}

func TestJankUnderGovernors(t *testing.T) {
	span := 10 * sim.Second
	ond := playGame(t, governor.NewOndemand(), span)
	cons := playGame(t, governor.NewConservative(), span)
	// Ondemand ramps within one sample and keeps up; conservative spends
	// the whole ramp dropping frames.
	if ond.JankRatio() > 0.15 {
		t.Errorf("ondemand jank = %.2f, want low", ond.JankRatio())
	}
	if cons.JankRatio() <= ond.JankRatio() {
		t.Errorf("conservative jank (%.2f) should exceed ondemand (%.2f)",
			cons.JankRatio(), ond.JankRatio())
	}
}

func TestQoEAwareGovernorBehaviour(t *testing.T) {
	eng := sim.NewEngine()
	g := governor.NewQoEAware()
	d := New(eng, 3, g, DefaultProfile())

	// Idle: bottom of the ladder.
	eng.RunUntil(sim.Time(500 * sim.Millisecond))
	if d.Core.OPPIndex() != 0 {
		t.Fatalf("idle OPP = %d", d.Core.OPPIndex())
	}

	// Input boost: straight to the boost OPP before any load shows.
	r, _ := d.Launcher().IconRect(apps.GalleryName)
	cx, cy := r.Center()
	tapAt(d, sim.Time(sim.Second), cx, cy)
	eng.RunUntil(sim.Time(sim.Second).Add(2 * sim.Millisecond))
	if d.Core.OPPIndex() != g.BoostIdx {
		t.Fatalf("after input OPP = %d, want boost %d", d.Core.OPPIndex(), g.BoostIdx)
	}

	// After the launch settles and only background work remains, the clock
	// parks at the efficient OPP or below — never chases the maximum.
	eng.RunUntil(sim.Time(60 * sim.Second))
	if idx := d.Core.OPPIndex(); idx > g.EfficientIdx {
		t.Fatalf("background OPP = %d, want <= efficient %d", idx, g.EfficientIdx)
	}
}

func TestQoEAwareLearnBoost(t *testing.T) {
	g := governor.NewQoEAware()
	perLag := map[int]int{0: 3, 1: 3, 2: 5, 3: 12, 4: 12, 5: 12, 6: 12, 7: 12, 8: 12, 9: 13}
	g.LearnBoost(perLag, 0.9)
	if g.BoostIdx != 12 {
		t.Fatalf("learned boost = %d, want 12 (90th percentile)", g.BoostIdx)
	}
	g.LearnBoost(perLag, 1.0)
	if g.BoostIdx != 13 {
		t.Fatalf("learned boost = %d, want 13 (max)", g.BoostIdx)
	}
	g.LearnBoost(nil, 0.9) // no-op
	if g.BoostIdx != 13 {
		t.Fatal("empty learn changed boost")
	}
}

func TestNetProxyMakesIODeterministic(t *testing.T) {
	run := func(seed uint64, proxy *netproxy.Proxy) sim.Duration {
		eng := sim.NewEngine()
		prof := DefaultProfile()
		prof.NetProxy = proxy
		d := New(eng, seed, governor.NewInteractive(), prof)
		r, _ := d.Launcher().IconRect(apps.PulseNewsName)
		cx, cy := r.Center()
		tapAt(d, sim.Time(sim.Second), cx, cy)
		// Refresh triggers a network fetch.
		eng.RunUntil(sim.Time(30 * sim.Second))
		fx, fy := apps.PulseRefreshButton.Center()
		tapAt(d, sim.Time(31*sim.Second), fx, fy)
		eng.RunUntil(sim.Time(60 * sim.Second))
		gts := d.GroundTruths()
		last := gts[len(gts)-1]
		if !last.Complete || last.Label != "pulsenews.refresh" {
			t.Fatalf("refresh did not complete: %+v", last)
		}
		return last.CompleteTime.Sub(last.InputTime)
	}

	// Record once, then two replays with different seeds: with the proxy
	// the IO component is identical; without it the seeds disagree.
	rec := netproxy.New(netproxy.Record)
	run(1, rec)
	if rec.AccessCount() == 0 {
		t.Fatal("proxy recorded no accesses")
	}
	a := run(2, rec.ReplayCopy())
	b := run(3, rec.ReplayCopy())
	noProxyA := run(2, nil)
	noProxyB := run(3, nil)
	diffProxy := a - b
	if diffProxy < 0 {
		diffProxy = -diffProxy
	}
	diffPlain := noProxyA - noProxyB
	if diffPlain < 0 {
		diffPlain = -diffPlain
	}
	// CPU work jitter (2%) remains in both; IO jitter (8% of a 420ms fetch)
	// only without the proxy. The proxy run must be markedly tighter.
	if diffProxy >= diffPlain {
		t.Errorf("proxy lag spread %v not below plain spread %v", diffProxy, diffPlain)
	}
}
