// Package record implements the paper's record-and-replay mechanism
// (§II-B): a getevent-style recorder that captures the device's input event
// stream with exact timestamps, an accurate replay agent ("this agent knows
// the input event trace we recorded and replays it with accurate timings"),
// and — for contrast — a naive sendevent-style replayer whose per-event
// processing delay accumulates into exactly the timing drift that made the
// paper's authors write their own agent.
package record

import (
	"io"

	"repro/internal/device"
	"repro/internal/evdev"
	"repro/internal/sim"
)

// Recorder captures input events flowing into a device, like `getevent -t`
// running on the phone.
type Recorder struct {
	events []evdev.Event
}

// Attach subscribes a new recorder to the device input bus.
func Attach(d *device.Device) *Recorder {
	r := &Recorder{}
	d.Subscribe(func(ev evdev.Event) { r.events = append(r.events, ev) })
	return r
}

// Events returns the captured trace.
func (r *Recorder) Events() []evdev.Event { return r.events }

// Write serialises the trace in getevent text format.
func (r *Recorder) Write(w io.Writer) error {
	return evdev.MarshalGetevent(w, evdev.DefaultDeviceNode, r.events)
}

// Agent replays a recorded event trace into a device with accurate timings.
// Per the paper's repeatability analysis, replay must be millisecond-
// accurate; the agent schedules every event at its recorded timestamp with
// only a small per-gesture injection error (default ±1 ms) standing in for
// kernel scheduling noise across repetitions.
type Agent struct {
	// GestureJitter is the ± injection error applied uniformly to all
	// events of one gesture, preserving intra-gesture spacing.
	GestureJitter sim.Duration

	// Replay cursor: one in-flight engine event at a time. Keeping the
	// cursor on the agent (not in a closure) lets checkpoint tests capture
	// and restore an in-flight replay alongside the engine state.
	dev    *device.Device
	events []evdev.Event
	rnd    *sim.Rand
	next   int
	offset sim.Duration
	last   sim.Time
	step   func()
}

// NewAgent returns an agent with ±1 ms per-gesture injection error.
func NewAgent() *Agent { return &Agent{GestureJitter: 1 * sim.Millisecond} }

// Replay starts replaying the trace onto the device's engine. rnd drives the
// per-gesture jitter (pass nil for exact replay). Call before running the
// engine.
//
// Events are scheduled lazily, one at a time: injecting event i schedules
// event i+1 at its (jittered, monotonic) timestamp. The adjusted times are
// non-decreasing, so firing order equals trace order, while the engine's
// queue holds a single agent event instead of the whole trace — thousands of
// pre-scheduled events used to dominate the heap depth every push and pop
// paid for. Jitter draws happen in trace order exactly as the pre-scheduling
// variant made them, so replays remain seed-for-seed deterministic.
func (a *Agent) Replay(d *device.Device, events []evdev.Event, rnd *sim.Rand) {
	a.dev, a.events, a.rnd = d, events, rnd
	a.next, a.offset, a.last = 0, 0, sim.Time(-1)
	if a.step == nil {
		a.step = a.injectNext
	}
	a.scheduleNext()
}

// scheduleNext arms the engine event for the next trace event, drawing the
// per-gesture jitter offset when that event starts a new gesture.
func (a *Agent) scheduleNext() {
	if a.next >= len(a.events) {
		return
	}
	ev := a.events[a.next]
	if ev.Type == evdev.EVAbs && ev.Code == evdev.AbsMTTrackingID && ev.Value != evdev.TrackingRelease {
		// New gesture: draw a fresh injection offset.
		if a.rnd != nil && a.GestureJitter > 0 {
			a.offset = a.rnd.Jitter(a.GestureJitter)
		}
	}
	at := ev.Time.Add(a.offset)
	if at < a.last {
		at = a.last // keep the stream monotonic
	}
	a.last = at
	a.dev.Eng.AtFunc(at, a.step)
}

// injectNext delivers the due event. The successor is scheduled before the
// injection so that, at equal timestamps, the next trace event keeps a lower
// sequence number than anything the injection itself schedules — the same
// ordering the old schedule-everything-upfront strategy produced.
func (a *Agent) injectNext() {
	ev := a.events[a.next]
	a.next++
	a.scheduleNext()
	a.dev.Inject(ev)
}

// NaiveReplay models the stock sendevent tool, which the paper found "very
// basic and does not provide enough functionality and performance to replay
// our recorded event trace accurately": each event write costs perEventDelay
// of processing, so the injected trace drifts further and further behind the
// recording. Returns the final accumulated drift.
func NaiveReplay(d *device.Device, events []evdev.Event, perEventDelay sim.Duration) sim.Duration {
	if perEventDelay <= 0 {
		perEventDelay = 1200 * sim.Microsecond
	}
	var drift sim.Duration
	var prev sim.Time
	cursor := sim.Time(0)
	for i, ev := range events {
		ev := ev
		if i > 0 {
			gap := ev.Time.Sub(prev)
			cursor = cursor.Add(gap)
		}
		prev = ev.Time
		// Each write blocks for perEventDelay before the event lands.
		cursor = cursor.Add(perEventDelay)
		drift = cursor.Sub(ev.Time)
		d.Eng.At(cursor, func(*sim.Engine) { d.Inject(ev) })
	}
	return drift
}
