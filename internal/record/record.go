// Package record implements the paper's record-and-replay mechanism
// (§II-B): a getevent-style recorder that captures the device's input event
// stream with exact timestamps, an accurate replay agent ("this agent knows
// the input event trace we recorded and replays it with accurate timings"),
// and — for contrast — a naive sendevent-style replayer whose per-event
// processing delay accumulates into exactly the timing drift that made the
// paper's authors write their own agent.
package record

import (
	"io"

	"repro/internal/device"
	"repro/internal/evdev"
	"repro/internal/sim"
)

// Recorder captures input events flowing into a device, like `getevent -t`
// running on the phone.
type Recorder struct {
	events []evdev.Event
}

// Attach subscribes a new recorder to the device input bus.
func Attach(d *device.Device) *Recorder {
	r := &Recorder{}
	d.Subscribe(func(ev evdev.Event) { r.events = append(r.events, ev) })
	return r
}

// Events returns the captured trace.
func (r *Recorder) Events() []evdev.Event { return r.events }

// Write serialises the trace in getevent text format.
func (r *Recorder) Write(w io.Writer) error {
	return evdev.MarshalGetevent(w, evdev.DefaultDeviceNode, r.events)
}

// Agent replays a recorded event trace into a device with accurate timings.
// Per the paper's repeatability analysis, replay must be millisecond-
// accurate; the agent schedules every event at its recorded timestamp with
// only a small per-gesture injection error (default ±1 ms) standing in for
// kernel scheduling noise across repetitions.
type Agent struct {
	// GestureJitter is the ± injection error applied uniformly to all
	// events of one gesture, preserving intra-gesture spacing.
	GestureJitter sim.Duration
}

// NewAgent returns an agent with ±1 ms per-gesture injection error.
func NewAgent() *Agent { return &Agent{GestureJitter: 1 * sim.Millisecond} }

// Replay schedules the whole trace onto the device's engine. rnd drives the
// per-gesture jitter (pass nil for exact replay). Call before running the
// engine.
//
// All events are scheduled upfront at their (jittered, monotonic) times and
// fire through one shared injector callback: the adjusted times are
// non-decreasing and scheduled in trace order, so FIFO tie-breaking
// guarantees firing order equals trace order and the injector can walk the
// slice with a cursor. This costs one allocation per replay instead of two
// per event.
func (a *Agent) Replay(d *device.Device, events []evdev.Event, rnd *sim.Rand) {
	next := 0
	inject := func() {
		ev := events[next]
		next++
		d.Inject(ev)
	}
	var offset sim.Duration
	last := sim.Time(-1)
	for _, ev := range events {
		if ev.Type == evdev.EVAbs && ev.Code == evdev.AbsMTTrackingID && ev.Value != evdev.TrackingRelease {
			// New gesture: draw a fresh injection offset.
			if rnd != nil && a.GestureJitter > 0 {
				offset = rnd.Jitter(a.GestureJitter)
			}
		}
		at := ev.Time.Add(offset)
		if at < last {
			at = last // keep the stream monotonic
		}
		last = at
		d.Eng.AtFunc(at, inject)
	}
}

// NaiveReplay models the stock sendevent tool, which the paper found "very
// basic and does not provide enough functionality and performance to replay
// our recorded event trace accurately": each event write costs perEventDelay
// of processing, so the injected trace drifts further and further behind the
// recording. Returns the final accumulated drift.
func NaiveReplay(d *device.Device, events []evdev.Event, perEventDelay sim.Duration) sim.Duration {
	if perEventDelay <= 0 {
		perEventDelay = 1200 * sim.Microsecond
	}
	var drift sim.Duration
	var prev sim.Time
	cursor := sim.Time(0)
	for i, ev := range events {
		ev := ev
		if i > 0 {
			gap := ev.Time.Sub(prev)
			cursor = cursor.Add(gap)
		}
		prev = ev.Time
		// Each write blocks for perEventDelay before the event lands.
		cursor = cursor.Add(perEventDelay)
		drift = cursor.Sub(ev.Time)
		d.Eng.At(cursor, func(*sim.Engine) { d.Inject(ev) })
	}
	return drift
}
