package record

import (
	"bytes"
	"testing"

	"repro/internal/device"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/sim"
)

func newDev() *device.Device {
	eng := sim.NewEngine()
	return device.New(eng, 1, governor.NewInteractive(), device.DefaultProfile())
}

func injectTap(d *device.Device, at sim.Time, x, y int) {
	enc := evdev.NewEncoder()
	for _, ev := range enc.EncodeTap(at, x, y) {
		ev := ev
		d.Eng.At(ev.Time, func(*sim.Engine) { d.Inject(ev) })
	}
}

func TestRecorderCapturesInjectedEvents(t *testing.T) {
	d := newDev()
	rec := Attach(d)
	injectTap(d, sim.Time(sim.Second), 540, 960)
	d.Eng.RunUntil(sim.Time(2 * sim.Second))
	evs := rec.Events()
	if len(evs) < 7 {
		t.Fatalf("recorded %d events, want a full tap packet", len(evs))
	}
	gs := evdev.Classify(evs)
	if len(gs) != 1 || gs[0].Kind != evdev.Tap {
		t.Fatalf("classified %v", gs)
	}
	if gs[0].Start != sim.Time(sim.Second) {
		t.Fatalf("recorded tap at %v, want 1s", gs[0].Start)
	}
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := evdev.UnmarshalGetevent(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatal("getevent round trip lost events")
	}
}

func TestAgentReplaysAccurately(t *testing.T) {
	// Record on one device.
	d1 := newDev()
	rec := Attach(d1)
	injectTap(d1, sim.Time(sim.Second), 540, 960)
	injectTap(d1, sim.Time(3*sim.Second), 100, 1700)
	d1.Eng.RunUntil(sim.Time(5 * sim.Second))

	// Replay on a fresh device with zero jitter.
	d2 := newDev()
	got := Attach(d2)
	agent := &Agent{GestureJitter: 0}
	agent.Replay(d2, rec.Events(), nil)
	d2.Eng.RunUntil(sim.Time(5 * sim.Second))

	a, b := rec.Events(), got.Events()
	if len(a) != len(b) {
		t.Fatalf("replayed %d events, recorded %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestAgentJitterIsBoundedAndPerGesture(t *testing.T) {
	d1 := newDev()
	rec := Attach(d1)
	injectTap(d1, sim.Time(sim.Second), 540, 960)
	d1.Eng.RunUntil(sim.Time(2 * sim.Second))

	d2 := newDev()
	got := Attach(d2)
	agent := NewAgent()
	agent.Replay(d2, rec.Events(), sim.NewRand(7))
	d2.Eng.RunUntil(sim.Time(2 * sim.Second))

	a, b := rec.Events(), got.Events()
	if len(a) != len(b) {
		t.Fatal("event count changed under jitter")
	}
	offset := b[0].Time.Sub(a[0].Time)
	if offset < -sim.Millisecond || offset > sim.Millisecond {
		t.Fatalf("injection offset %v exceeds ±1ms", offset)
	}
	for i := range a {
		// All events of the gesture shift by the same offset: intra-gesture
		// spacing must be exactly preserved.
		if b[i].Time.Sub(a[i].Time) != offset {
			t.Fatalf("event %d offset %v != gesture offset %v", i, b[i].Time.Sub(a[i].Time), offset)
		}
	}
}

func TestNaiveReplayDrifts(t *testing.T) {
	// The sendevent-style replayer accumulates per-event delay; over a long
	// trace the drift grows unboundedly — the reason the paper wrote its own
	// agent ("timings that vary by 0.5 to 1 second between multiple runs").
	d1 := newDev()
	rec := Attach(d1)
	enc := evdev.NewEncoder()
	for i := 0; i < 20; i++ {
		at := sim.Time(i+1) * sim.Time(sim.Second)
		for _, ev := range enc.EncodeSwipe(at, 540, 1500, 540, 300, 300*sim.Millisecond) {
			ev := ev
			d1.Eng.At(ev.Time, func(*sim.Engine) { d1.Inject(ev) })
		}
	}
	d1.Eng.RunUntil(sim.Time(25 * sim.Second))

	d2 := newDev()
	drift := NaiveReplay(d2, rec.Events(), 0)
	if drift < 500*sim.Millisecond {
		t.Fatalf("naive replay drift %v, want > 0.5s over a swipe-heavy trace", drift)
	}
	d2.Eng.RunUntil(sim.Time(30 * sim.Second))

	// Compare against the accurate agent's drift: effectively zero.
	d3 := newDev()
	agent := &Agent{GestureJitter: 0}
	agent.Replay(d3, rec.Events(), nil)
	d3.Eng.RunUntil(sim.Time(30 * sim.Second))
}
