// Command qoed is the characterisation server: a long-running service that
// owns warmed replay sessions behind bounded worker pools and executes
// sweep jobs submitted over HTTP/JSON.
//
// API (see docs/serving.md for the full reference):
//
//	POST   /jobs              submit a job (429 once the queue is full)
//	GET    /jobs              list jobs newest-first (?state=, ?limit=)
//	GET    /jobs/{id}         job status
//	GET    /jobs/{id}/results stream per-run results as NDJSON (?from=N resumes)
//	DELETE /jobs/{id}         cancel
//	GET    /healthz           liveness
//	GET    /statsz            queue depth, in-flight runs, warm sessions,
//	                          per-spec fork counts, job counters
//
// Usage:
//
//	qoed [-addr 127.0.0.1:8090] [-executors 2] [-workers N] [-queue 8] \
//	     [-retain 256] [-journal DIR] [-stall 2m]
//
// With -journal, every job's spec, result records and terminal state are
// spooled to a per-job CRC-framed append-only file under DIR; on restart
// finished jobs come back listable and streamable, interrupted jobs are
// re-queued and resume at their last durable record. With -stall > 0, a
// running job whose workers make no progress for that long is failed and its
// executor counted unhealthy; while no executor is healthy /healthz answers
// 503 and submissions are shed with 429.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8090", "listen address")
	executors := flag.Int("executors", 2, "concurrent jobs, each on its own warm replay pool")
	workers := flag.Int("workers", 0, "replay workers per executor pool (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 8, "queued-job limit; submissions beyond it get 429")
	retain := flag.Int("retain", 256, "terminal jobs retained for status/results replay; older ones are evicted")
	journal := flag.String("journal", "", "durable job journal directory (empty = off); jobs survive restarts")
	stall := flag.Duration("stall", 2*time.Minute, "stuck-run watchdog timeout (0 = off)")
	flag.Parse()

	srv, err := serve.New(serve.Options{
		Executors:    *executors,
		Workers:      *workers,
		QueueDepth:   *queue,
		RetainJobs:   *retain,
		Journal:      *journal,
		StallTimeout: *stall,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoed: %v\n", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "qoed: serving on http://%s (%d executors x %d workers, queue %d)\n",
		*addr, *executors, *workers, *queue)

	select {
	case sig := <-stop:
		fmt.Fprintf(os.Stderr, "qoed: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Close()
	case err := <-errCh:
		srv.Close()
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "qoed: %v\n", err)
			os.Exit(1)
		}
	}
}
