// Command qoerecord records a workload's input trace through the simulated
// device, producing a getevent-format file that qoeannotate and qoereplay
// consume — the Part A front end of the paper's Fig. 4.
//
// Usage:
//
//	qoerecord -workload dataset01 [-seed 1] [-o dataset01.trace]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/evdev"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "quickstart", "workload to record (dataset01..dataset05, 24hour, quickstart)")
	seed := flag.Uint64("seed", 1, "recording seed")
	out := flag.String("o", "", "output trace file (default <workload>.trace)")
	flag.Parse()

	w := workload.ByName(*name)
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}
	rec, truths, err := w.Record(*seed)
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = *name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "# workload %s duration %s seed %d\n", w.Name, rec.Duration, *seed)
	if err := evdev.MarshalGetevent(f, evdev.DefaultDeviceNode, rec.Events); err != nil {
		fatal(err)
	}

	actual, spurious := 0, 0
	for _, gt := range truths {
		if gt.Spurious {
			spurious++
		} else {
			actual++
		}
	}
	fmt.Printf("recorded %s: %d events, %d interactions (%d actual lags, %d spurious) -> %s\n",
		w.Name, len(rec.Events), len(truths), actual, spurious, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoerecord:", err)
	os.Exit(1)
}
