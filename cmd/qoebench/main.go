// Command qoebench runs the paper's full evaluation and regenerates every
// table and figure: Table I, Fig. 3 (governor vs oracle frequency snapshot),
// Fig. 5 (getevent format), Fig. 7 (suggester), Fig. 10 (input
// classification), Fig. 11 (lag distributions), Fig. 12 (irritation and
// energy), Fig. 13 (scatter), Fig. 14 (cross-dataset summary) and the
// headline savings numbers.
//
// Usage:
//
//	qoebench [-reps 5] [-seed 1] [-with24h] [-figure all|1|3|5|7|10|11|12|13|14|headlines]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/experiment"
	"repro/internal/governor"
	"repro/internal/match"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/screen"
	"repro/internal/sim"
	"repro/internal/suggest"
	"repro/internal/video"
	"repro/internal/workload"
)

func main() {
	reps := flag.Int("reps", 5, "repetitions per configuration (paper: 5)")
	seed := flag.Uint64("seed", 1, "master seed")
	with24h := flag.Bool("with24h", true, "include the 24-hour workload in Fig. 10")
	figure := flag.String("figure", "all", "which table/figure to print (all, 1, 3, 5, 7, 10, 11, 12, 13, 14, headlines)")
	jsonOut := flag.String("json", "", "also write per-dataset result summaries as JSON")
	verbose := flag.Bool("v", true, "print progress")
	flag.Parse()

	want := func(name string) bool { return *figure == "all" || *figure == name }

	var progress func(string)
	if *verbose {
		progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	model, err := power.Calibrate(power.Snapdragon8074(), power.DefaultSilicon(), 2*sim.Second)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("power model: %s\n", model)
	fmt.Printf("energy/cycle by OPP (nJ):")
	for i := range model.Table {
		fmt.Printf(" %.2f=%0.3f", model.Table[i].GHz(), model.EnergyPerCycleNJ(i))
	}
	fmt.Println()

	start := time.Now()
	opts := experiment.Options{Reps: *reps, Seed: *seed, Progress: progress}
	var results []*experiment.DatasetResult
	for _, w := range workload.Datasets() {
		res, err := experiment.RunDataset(w, model, opts)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
	}
	fmt.Fprintf(os.Stderr, "matrix complete: %d datasets x %d configs x %d reps in %v\n",
		len(results), len(results[0].Configs), *reps, time.Since(start).Round(time.Millisecond))

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteSummaries(f, results); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "summaries -> %s\n", *jsonOut)
	}

	section := func() { fmt.Println("\n" + strings.Repeat("=", 78)) }

	if want("1") {
		section()
		report.TableI(os.Stdout, results)
	}
	if want("3") {
		section()
		// The paper's Fig. 3 shows dataset 01 around t=265s.
		report.Figure3(os.Stdout, results[0], sim.Time(265*sim.Second))
	}
	if want("5") {
		section()
		report.Figure5(os.Stdout)
	}
	if want("7") {
		section()
		figure7(results[0], model)
	}
	if want("10") {
		section()
		extra := map[string][4]int{}
		if *with24h {
			fmt.Fprintln(os.Stderr, "[24hour] recording the 24-hour workload")
			rec24, truths24, err := workload.TwentyFourHour().Record(*seed)
			if err != nil {
				fatal(err)
			}
			t, s, a, sp := experiment.ClassifyInputs(match.Gestures(rec24.Events), truths24)
			extra["24hour"] = [4]int{t, s, a, sp}
		}
		report.Figure10(os.Stdout, results, extra)
	}
	if want("11") {
		section()
		report.Figure11(os.Stdout, results[0])
	}
	if want("12") {
		section()
		report.Figure12(os.Stdout, results[1]) // paper uses dataset 02
	}
	if want("13") {
		section()
		report.Figure13(os.Stdout, results[1])
	}
	if want("14") {
		section()
		report.Figure14(os.Stdout, results)
	}
	if want("headlines") {
		section()
		report.Headlines(os.Stdout, results)
	}
}

// figure7 re-creates the paper's suggester example: the Gallery cold launch
// of dataset 01 replayed at the lowest fixed frequency ("loading the Gallery
// takes about 200 frames at the lowest CPU frequency").
func figure7(res *experiment.DatasetResult, model *power.Model) {
	w := res.Workload
	art := workload.Replay(w, res.Recording, governor.NewFixed(model.Table, 0), "0.30 GHz", 77, true)
	gs := res.Gestures
	// Lag 0 is the gallery launch. The workload creator masks the loading
	// spinner, the paper's "if a small animation prevents the suggester
	// from finding still standing images, a mask can be applied" example —
	// so each progressively loaded album yields one suggestion.
	startIdx := art.Video.IndexAt(gs[0].Start)
	endIdx := art.Video.IndexAt(gs[1].Start)
	cfg := suggest.Config{
		MinStill: 1,
		Mask:     video.NewMask(screen.ClockRect, apps.GalleryLoadSpinnerRect),
	}
	report.Figure7(os.Stdout, art.Video, startIdx, endIdx, cfg)

	// The paper's tuning example: requiring 30 zeros cuts the suggestions.
	cfg.MinStill = 30
	sugg := suggest.Suggest(art.Video, startIdx, endIdx, cfg)
	fmt.Printf("with min-still 30 (paper's tuning example): %d suggestions\n", len(sugg))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoebench:", err)
	os.Exit(1)
}
