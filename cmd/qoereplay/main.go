// Command qoereplay replays a recorded workload under a chosen configuration
// (a fixed frequency or a governor), runs the matcher against the annotation
// database, and emits the lag profile, user irritation and dynamic energy —
// the paper's Fig. 4 Part B as a single tool.
//
// With -repeat the recording is concatenated back to back (a sustained
// workload), and with -trip a per-cluster RC thermal model plus throttler is
// booted: the per-cluster summary then includes peak/steady temperature,
// throttled time and cap-change counts.
//
// With -sweep the single replay is replaced by the full characterisation
// matrix on the chosen SoC spec (experiment.RunMatrix): every fixed
// frequency, the homogeneous governors and — on biglittle — the mixed
// per-cluster governor arms, plus the energy-aware cluster oracle, rendered
// as the config-matrix table.
//
// With -idle every cluster gets the default C-state ladder
// (wfi/core-off/cluster-off): an idle cluster sinks down the ladder, work
// arrival pays the state's exit latency before dispatch, and idle residency
// is priced as leakage — the per-cluster summary then includes idle time,
// leakage energy, wake and mispredict counts.
//
// Usage:
//
//	qoereplay -workload dataset01 -trace dataset01.trace -db dataset01.adb \
//	          -config ondemand [-soc dragonboard|biglittle] [-seed 2] [-o profile.json] \
//	          [-repeat 3] [-trip 32] [-clear 30] [-mincap 5] [-idle]
//	qoereplay -workload quickstart -soc biglittle -sweep [-reps 2] [-idle]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/evdev"
	"repro/internal/experiment"
	"repro/internal/match"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "quickstart", "workload name matching the trace")
	tracePath := flag.String("trace", "", "getevent trace recorded by qoerecord")
	dbPath := flag.String("db", "", "annotation DB built by qoeannotate")
	config := flag.String("config", "interactive", "configuration: governor name or frequency label like '0.96 GHz'")
	socName := flag.String("soc", "dragonboard", "SoC spec: dragonboard (paper, single Krait core) or biglittle (4+4)")
	seed := flag.Uint64("seed", 2, "replay seed")
	out := flag.String("o", "", "write the lag profile as JSON")
	repeat := flag.Int("repeat", 1, "replay the recording N times back to back (sustained workload)")
	trip := flag.Float64("trip", 0, "thermal trip temperature in °C; 0 disables the thermal model")
	clear := flag.Float64("clear", 0, "thermal clear temperature in °C (default trip-2)")
	minCap := flag.Int("mincap", 5, "lowest OPP index the throttler may cap to")
	sweep := flag.Bool("sweep", false, "run the full config matrix + cluster oracle on the chosen SoC instead of one replay")
	reps := flag.Int("reps", 2, "repetitions per configuration in -sweep mode (paper: 5)")
	idle := flag.Bool("idle", false, "enable the per-cluster C-state ladder (wfi/core-off/cluster-off): wakes cost exit latency and idle time leaks")
	flag.Parse()

	w := workload.ByName(*name)
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}
	var spec soc.Spec
	switch *socName {
	case "dragonboard":
		spec = soc.Dragonboard()
	case "biglittle":
		spec = soc.BigLittle44()
	default:
		fatal(fmt.Errorf("unknown SoC spec %q (use dragonboard or biglittle)", *socName))
	}
	if *idle {
		spec = soc.WithDefaultIdle(spec)
	}
	if *sweep {
		if *tracePath != "" || *dbPath != "" || *repeat > 1 || *trip > 0 {
			fatal(fmt.Errorf("-sweep records and annotates internally; it cannot be combined with -trace/-db/-repeat/-trip"))
		}
		// -config and -o have non-empty semantics only for single replays;
		// reject them explicitly rather than silently ignoring a filter or
		// an output path the user asked for.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "config" || f.Name == "o" {
				fatal(fmt.Errorf("-%s applies to a single replay; -sweep runs the whole matrix and prints its table", f.Name))
			}
		})
		res, err := experiment.RunMatrix(w, spec, experiment.Options{
			Reps: *reps, Seed: *seed,
			Progress: func(msg string) { fmt.Fprintln(os.Stderr, msg) },
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := report.MatrixTable(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	w.Profile.SoC = spec
	socModel, err := spec.Calibrate(0)
	if err != nil {
		fatal(err)
	}
	rec, err := loadTrace(w, *tracePath)
	if err != nil {
		fatal(err)
	}
	if *repeat > 1 {
		if *dbPath != "" {
			// A DB built from the unrepeated trace has one entry per original
			// gesture; the repeated recording yields repeat× as many, and the
			// matcher rejects the mismatch. Annotation must cover the
			// sustained recording itself.
			fatal(fmt.Errorf("-db cannot be combined with -repeat %d: the annotation DB must be built from the repeated recording (omit -db to build it on the fly)", *repeat))
		}
		rec = rec.Repeat(*repeat)
		w.Duration = rec.Duration
	}
	// Annotation always runs unthrottled; the thermal model applies to the
	// measured replay only.
	db, err := loadDB(w, rec, *dbPath)
	if err != nil {
		fatal(err)
	}
	if *trip <= 0 && (*clear > 0 || *minCap != 5) {
		fatal(fmt.Errorf("-clear/-mincap have no effect without -trip: set a trip temperature to enable the thermal model"))
	}
	if *trip > 0 {
		cfg := thermal.PhoneConfig(len(spec.Clusters), *trip, *minCap)
		if *clear > 0 {
			for i := range cfg.Zones {
				cfg.Zones[i].Throttle.ClearC = *clear
			}
		}
		if err := cfg.Validate(len(spec.Clusters)); err != nil {
			fatal(err)
		}
		w.Profile.Thermal = cfg
		w.Profile.ThermalPower = socModel
	}

	// Config names (governor names and fixed-frequency labels) refer to the
	// big/Krait ladder — the last cluster of either spec.
	bigTbl := spec.Clusters[len(spec.Clusters)-1].Table
	var cfg *experiment.Config
	for _, c := range experiment.AllConfigs(bigTbl) {
		if c.Name == *config {
			c := c
			cfg = &c
			break
		}
	}
	if cfg == nil {
		fatal(fmt.Errorf("unknown config %q (use a governor name or an OPP label such as %q)",
			*config, bigTbl[5].Label()))
	}
	// Fixed configs pin each cluster at the lowest OPP at or above the
	// labelled frequency on its own ladder (cpufreq RELATION_L, handled by
	// Config.Governors).
	govs, err := cfg.Governors(w.Profile)
	if err != nil {
		fatal(err)
	}

	gestures := match.Gestures(rec.Events)
	art := workload.ReplayMulti(w, rec, govs, cfg.Name, *seed, true)
	profile, err := match.Match(art.Video, db, gestures, cfg.Name, match.Options{Strict: true})
	if err != nil {
		fatal(err)
	}
	energy, err := socModel.Energy(art.BusyByCluster)
	if err != nil {
		fatal(err)
	}
	irritation := core.Irritation(profile, db.Thresholds())

	fmt.Printf("workload %s, config %s\n", w.Name, cfg.Name)
	fmt.Printf("lags: %d actual, %d spurious\n", len(profile.Actual()), profile.SpuriousCount())
	var total sim.Duration
	for _, d := range profile.Durations() {
		total += d
	}
	fmt.Printf("total lag time: %s\n", total)
	fmt.Printf("user irritation (HCI thresholds): %s\n", irritation)
	fmt.Printf("dynamic energy: %.2f J\n", energy)
	if len(art.Clusters) > 1 || *trip > 0 || *idle {
		fmt.Println()
		if err := report.ClusterSummary(os.Stdout, art, socModel); err != nil {
			fatal(err)
		}
	}
	if *trip > 0 {
		for _, ct := range art.Clusters {
			above := ct.Temp.TimeAbove(*trip, sim.Time(art.Window))
			fmt.Printf("time above trip (%.0f°C), %s: %s\n", *trip, ct.Name, above)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(profile); err != nil {
			fatal(err)
		}
		fmt.Printf("lag profile -> %s\n", *out)
	}
}

func loadTrace(w *workload.Workload, path string) (*workload.Recording, error) {
	if path == "" {
		rec, _, err := w.Record(1)
		return rec, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := evdev.UnmarshalGetevent(f)
	if err != nil {
		return nil, err
	}
	return &workload.Recording{Workload: w.Name, Duration: w.Duration, Events: events}, nil
}

func loadDB(w *workload.Workload, rec *workload.Recording, path string) (*annotate.DB, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return annotate.Load(f)
	}
	// Build on the fly for convenience.
	gestures := match.Gestures(rec.Events)
	art := workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "annotation", 0xA11, true)
	return annotate.Build(w.Name, art.Video, gestures, art.Truths, annotate.BuildOptions{MinStill: 1})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoereplay:", err)
	os.Exit(1)
}
