// Command qoeframes exports the expected lag-ending images of an annotation
// database as PNG (or PGM) files, one per interaction lag — the images a
// human annotator would have picked in the paper's workload-creation GUI.
//
// Usage:
//
//	qoeframes -db dataset01.adb [-dir frames] [-format png] [-scale 6]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/annotate"
	"repro/internal/video"
)

func main() {
	dbPath := flag.String("db", "", "annotation DB built by qoeannotate")
	dir := flag.String("dir", "frames", "output directory")
	format := flag.String("format", "png", "png or pgm")
	scale := flag.Int("scale", 6, "png upscale factor")
	flag.Parse()

	if *dbPath == "" {
		fatal(fmt.Errorf("-db is required"))
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		fatal(err)
	}
	db, err := annotate.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	written := 0
	for _, e := range db.Entries {
		if e.Spurious || e.Image == nil {
			continue
		}
		label := strings.NewReplacer("/", "_", ".", "-").Replace(e.Label)
		name := fmt.Sprintf("lag%03d-%s.%s", e.Index, label, *format)
		out, err := os.Create(filepath.Join(*dir, name))
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "pgm":
			err = video.WritePGM(out, e.Image)
		default:
			err = video.WritePNG(out, e.Image, *scale)
		}
		cerr := out.Close()
		if err != nil {
			fatal(err)
		}
		if cerr != nil {
			fatal(cerr)
		}
		written++
	}
	fmt.Printf("wrote %d lag-ending images from %s to %s/\n", written, db.Workload, *dir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoeframes:", err)
	os.Exit(1)
}
