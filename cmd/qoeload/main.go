// Command qoeload is the load harness for qoed: N concurrent clients submit
// the same sweep job against a time budget, each streaming its job's results
// to completion before submitting the next, and the run is summarised as
// throughput (jobs/min), job latency percentiles (p50/p95/p99) and error
// counts. The server's 429 backpressure responses are absorbed as retries
// and reported separately.
//
// Usage:
//
//	qoeload [-url http://127.0.0.1:8090] [-clients 4] [-budget 30s] \
//	        [-workload quickstart] [-soc dragonboard] [-idle] \
//	        [-configs "0.96 GHz,2.15 GHz,ondemand"] [-reps 1] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "qoed base URL")
	clients := flag.Int("clients", 4, "concurrent clients")
	budget := flag.Duration("budget", 30*time.Second, "submission time budget")
	workloadName := flag.String("workload", "quickstart", "workload to sweep")
	socName := flag.String("soc", "dragonboard", "SoC spec: dragonboard or biglittle")
	idle := flag.Bool("idle", false, "install the default C-state ladder")
	configs := flag.String("configs", "", "comma-separated config subset (empty = full matrix)")
	reps := flag.Int("reps", 1, "repetitions per configuration")
	seed := flag.Uint64("seed", 1, "sweep master seed")
	flag.Parse()

	job := serve.JobSpec{
		Workload: *workloadName,
		SoC:      *socName,
		Idle:     *idle,
		Reps:     *reps,
		Seed:     *seed,
	}
	if *configs != "" {
		for _, c := range strings.Split(*configs, ",") {
			if c = strings.TrimSpace(c); c != "" {
				job.Configs = append(job.Configs, c)
			}
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	rep, err := serve.RunHarness(ctx, serve.HarnessOptions{
		BaseURL: *url,
		Clients: *clients,
		Budget:  *budget,
		Job:     job,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	if rep.Errors > 0 {
		os.Exit(1)
	}
}
