// Command qoeload is the load harness for qoed: N concurrent clients submit
// sweep jobs against a time budget, each streaming its job's results to
// completion before submitting the next, and the run is summarised as
// throughput (jobs/min), job latency percentiles (p50/p95/p99), queue-wait
// percentiles and error counts. The server's 429 backpressure responses are
// absorbed as retries and reported separately.
//
// Passing a comma-separated -soc list ("dragonboard,biglittle") makes the
// harness cycle a job mix round-robin instead of replaying one spec, and the
// report breaks completed jobs down per spec. -json emits the report as one
// JSON object (durations in milliseconds) for downstream tooling.
//
// -chaos mixes deterministic client-side faults into the load: every cutth
// submission's result stream is cut mid-record (the client's ?from= resume
// must recover it) and every cancelth submission is cancelled right after
// submit. The report then carries recovered-vs-failed counts for the
// injected faults, in both the text and -json forms.
//
// -units turns every submission into a population job of that many Monte
// Carlo device units; -pop sets the perturbation model ("default" or
// "cn=0.05,active=0.05,ambient=15:35,case=0.1,aged=0.25,steps=3") and -trip
// the thermal environment (0 off, < 0 record-only zones, 40..150 trip °C).
// Population jobs stream one "pop" record per unit × config × rep and a
// terminal percentile summary; see docs/population.md.
//
// Usage:
//
//	qoeload [-url http://127.0.0.1:8090] [-clients 4] [-budget 30s] \
//	        [-workload quickstart] [-soc dragonboard[,biglittle]] [-idle] \
//	        [-configs "0.96 GHz,2.15 GHz,ondemand"] [-reps 1] [-seed 1] \
//	        [-timeout 0] [-units 0] [-pop default] [-trip 0] \
//	        [-chaos [cut=N][,cancel=M]] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/population"
	"repro/internal/serve"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8090", "qoed base URL")
	clients := flag.Int("clients", 4, "concurrent clients")
	budget := flag.Duration("budget", 30*time.Second, "submission time budget")
	workloadName := flag.String("workload", "quickstart", "workload to sweep")
	socName := flag.String("soc", "dragonboard", "SoC spec(s): dragonboard or biglittle; a comma-separated list is cycled as a mix")
	idle := flag.Bool("idle", false, "install the default C-state ladder")
	configs := flag.String("configs", "", "comma-separated config subset (empty = full matrix)")
	reps := flag.Int("reps", 1, "repetitions per configuration")
	seed := flag.Uint64("seed", 1, "sweep master seed")
	timeout := flag.Duration("timeout", 0, "per-job execution deadline (0 = none)")
	units := flag.Int("units", 0, "population units per job (0 = plain matrix jobs)")
	pop := flag.String("pop", "", `population model: "default" or "cn=..,active=..,ambient=lo:hi,case=..,aged=..,steps=N" (needs -units)`)
	trip := flag.Float64("trip", 0, "population thermal environment: 0 off, < 0 record-only zones, 40..150 trip °C")
	chaos := flag.String("chaos", "", `client-side fault mix, e.g. "cut=3,cancel=5" (cut every Nth stream, cancel every Mth job)`)
	asJSON := flag.Bool("json", false, "emit the report as JSON (durations in ms)")
	flag.Parse()

	chaosMix, err := parseChaos(*chaos)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
		os.Exit(1)
	}

	base := serve.JobSpec{
		Workload:     *workloadName,
		Idle:         *idle,
		Reps:         *reps,
		Seed:         *seed,
		TimeoutMS:    timeout.Milliseconds(),
		Units:        *units,
		ThermalTripC: *trip,
	}
	if *pop != "" {
		if *units <= 0 {
			fmt.Fprintln(os.Stderr, "qoeload: -pop needs -units > 0")
			os.Exit(1)
		}
		model, err := population.ParseModel(*pop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
			os.Exit(1)
		}
		base.Population = &model
	}
	for _, c := range strings.Split(*configs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			base.Configs = append(base.Configs, c)
		}
	}
	var mix []serve.JobSpec
	for _, soc := range strings.Split(*socName, ",") {
		if soc = strings.TrimSpace(soc); soc != "" {
			spec := base
			spec.SoC = soc
			mix = append(mix, spec)
		}
	}
	if len(mix) == 0 {
		fmt.Fprintln(os.Stderr, "qoeload: -soc names no spec")
		os.Exit(1)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	rep, err := serve.RunHarness(ctx, serve.HarnessOptions{
		BaseURL: *url,
		Clients: *clients,
		Budget:  *budget,
		Jobs:    mix,
		Chaos:   chaosMix,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		out, err := json.Marshal(rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qoeload: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
	} else {
		fmt.Println(rep)
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// parseChaos parses the -chaos mix: a comma-separated list of cut=N and
// cancel=M. Empty means no chaos.
func parseChaos(s string) (serve.HarnessChaos, error) {
	var c serve.HarnessChaos
	if s == "" {
		return c, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		n := 0
		if ok {
			if _, err := fmt.Sscanf(val, "%d", &n); err != nil || n < 1 {
				ok = false
			}
		}
		if !ok {
			return c, fmt.Errorf("bad -chaos entry %q (want cut=N or cancel=M, N >= 1)", part)
		}
		switch key {
		case "cut":
			c.CutEvery = n
		case "cancel":
			c.CancelEvery = n
		default:
			return c, fmt.Errorf("unknown -chaos fault %q (want cut or cancel)", key)
		}
	}
	return c, nil
}
