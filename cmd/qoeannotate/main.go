// Command qoeannotate builds the annotation database for a recorded workload
// (the paper's Fig. 4 Part A): it replays the trace once under the stock
// interactive governor, captures the screen video, runs the suggester for
// each lag, and picks the ending frames.
//
// Usage:
//
//	qoeannotate -workload dataset01 -trace dataset01.trace [-o dataset01.adb]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/annotate"
	"repro/internal/evdev"
	"repro/internal/governor"
	"repro/internal/match"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "quickstart", "workload name matching the trace")
	tracePath := flag.String("trace", "", "getevent trace recorded by qoerecord")
	seed := flag.Uint64("seed", 0xA11, "annotation run seed")
	out := flag.String("o", "", "output annotation DB (default <workload>.adb)")
	flag.Parse()

	w := workload.ByName(*name)
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q", *name))
	}
	rec, err := loadTrace(w, *tracePath)
	if err != nil {
		fatal(err)
	}

	gestures := match.Gestures(rec.Events)
	art := workload.Replay(w, rec, governor.NewInteractive(), "annotation", *seed, true)
	db, err := annotate.Build(w.Name, art.Video, gestures, art.Truths, annotate.BuildOptions{MinStill: 1})
	if err != nil {
		fatal(err)
	}

	path := *out
	if path == "" {
		path = *name + ".adb"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := db.Save(f); err != nil {
		fatal(err)
	}
	spurious := 0
	for _, e := range db.Entries {
		if e.Spurious {
			spurious++
		}
	}
	fmt.Printf("annotated %s: %d lags (%d spurious) -> %s\n",
		w.Name, len(db.Entries), spurious, path)
}

func loadTrace(w *workload.Workload, path string) (*workload.Recording, error) {
	if path == "" {
		// No trace supplied: record fresh (convenience for demos).
		rec, _, err := w.Record(1)
		return rec, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := evdev.UnmarshalGetevent(f)
	if err != nil {
		return nil, err
	}
	return &workload.Recording{Workload: w.Name, Duration: w.Duration, Events: events}, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qoeannotate:", err)
	os.Exit(1)
}
