// Command qoepop runs a fleet-scale population sweep locally: -units Monte
// Carlo device perturbations of one SoC (silicon lottery, ambient/case
// thermal spread, battery-age frequency caps), each swept through the config
// matrix, with every run folded into streaming percentile digests — memory
// stays flat no matter how many units run. The result is a percentile table
// (p50/p95/p99 irritation, energy and peak temperature per config) rather
// than per-run means; -json emits the same summary as one JSON object.
//
// -shards spools every run's scalar record to append-only NDJSON shard
// files (pop-00000.ndjson, ...) for offline analysis, without changing the
// sweep's memory profile. See docs/population.md for the model grammar and
// the determinism contract.
//
// Usage:
//
//	qoepop [-workload quickstart] [-soc dragonboard] [-idle] \
//	       [-configs "0.96 GHz,2.15 GHz,ondemand"] [-units 100] [-reps 1] \
//	       [-seed 1] [-pop default] [-trip 0] [-workers 0] \
//	       [-shards dir] [-shard-size 100000] [-json] [-v]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"repro/internal/experiment"
	"repro/internal/population"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/thermal"
	"repro/internal/workload"
)

func main() {
	workloadName := flag.String("workload", "quickstart", "workload to sweep")
	socName := flag.String("soc", "dragonboard", "SoC spec: dragonboard or biglittle")
	idle := flag.Bool("idle", false, "install the default C-state ladder")
	configs := flag.String("configs", "", "comma-separated config subset (empty = full matrix)")
	units := flag.Int("units", 100, "population size (number of simulated devices)")
	reps := flag.Int("reps", 1, "repetitions per configuration per unit")
	seed := flag.Uint64("seed", 1, "population master seed (unit i replays at population.UnitSeed(seed, i))")
	pop := flag.String("pop", "default", `perturbation model: "default", "" (zero model) or "cn=..,active=..,ambient=lo:hi,case=..,aged=..,steps=N"`)
	trip := flag.Float64("trip", 0, "thermal environment: 0 off, < 0 record-only zones, > 0 trip °C")
	workers := flag.Int("workers", 0, "replay pool width (0 = GOMAXPROCS)")
	shards := flag.String("shards", "", "directory to spool per-run NDJSON shard files into (empty = none)")
	shardSize := flag.Int("shard-size", 0, "records per shard file (0 = 100000)")
	asJSON := flag.Bool("json", false, "emit the percentile summary as JSON")
	verbose := flag.Bool("v", false, "print sweep progress to stderr")
	flag.Parse()

	w := workload.ByName(*workloadName)
	if w == nil {
		fatal(fmt.Errorf("unknown workload %q", *workloadName))
	}
	spec, err := serve.SpecByName(*socName, *idle)
	if err != nil {
		fatal(err)
	}
	model, err := population.ParseModel(*pop)
	if err != nil {
		fatal(err)
	}
	var bt thermal.Config
	if *trip != 0 {
		bt = thermal.PhoneConfig(len(spec.Clusters), *trip, 0)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	opts := experiment.PopulationOptions{
		Options: experiment.Options{
			Reps:    *reps,
			Seed:    *seed,
			Workers: *workers,
			Context: ctx,
		},
		Units:       *units,
		Model:       model,
		BaseThermal: bt,
	}
	for _, c := range strings.Split(*configs, ",") {
		if c = strings.TrimSpace(c); c != "" {
			opts.Configs = append(opts.Configs, c)
		}
	}
	if *verbose {
		opts.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	var sw *report.ShardWriter
	if *shards != "" {
		sw, err = report.NewShardWriter(*shards, *shardSize)
		if err != nil {
			fatal(err)
		}
		opts.OnPop = func(pr experiment.PopRun) {
			if err := sw.Append(report.NewPopRunRecord(pr)); err != nil {
				fatal(err)
			}
		}
	}

	res, err := experiment.RunPopulation(w, spec, opts)
	if err != nil {
		fatal(err)
	}
	if sw != nil {
		if err := sw.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%d records -> %d shard(s) in %s\n", sw.Written(), sw.Shards(), *shards)
	}

	if *asJSON {
		sum := report.NewPopulationSummary(res)
		out, err := json.Marshal(sum)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	if err := report.PopulationTable(os.Stdout, res); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qoepop: %v\n", err)
	os.Exit(1)
}
