package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCheckFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "exists.md"), []byte("# hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	md := filepath.Join(dir, "index.md")
	content := `# Index
[good](exists.md) and [anchored](exists.md#section) and [inpage](#local)
[external](https://example.com/x) [mail](mailto:a@b.c)
[broken](missing.md) [also broken](sub/none.md#frag)
`
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out := checkFile(md)
	if len(out) != 2 {
		t.Fatalf("checkFile found %d broken links, want 2: %v", len(out), out)
	}
	for _, msg := range out {
		if !filepath.IsAbs(msg) && msg == "" {
			t.Fatalf("empty message")
		}
	}
	if out[0] == out[1] {
		t.Fatal("duplicate messages")
	}
}

// TestRepoDocsHaveNoBrokenLinks gates the real documentation set, the same
// check the CI docs job runs.
func TestRepoDocsHaveNoBrokenLinks(t *testing.T) {
	root := "../.."
	files := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "ROADMAP.md"),
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md found")
	}
	for _, f := range files {
		for _, msg := range checkFile(f) {
			t.Error(msg)
		}
	}
}
