// Command mdlinkcheck validates the relative links of markdown files: every
// [text](target) whose target is not an external URL or a bare anchor must
// point at an existing file or directory (anchors on relative targets are
// checked for file existence only). It exits non-zero listing every broken
// link — the docs gate CI runs over README.md, ROADMAP.md and docs/.
//
// Usage:
//
//	go run ./tools/mdlinkcheck README.md ROADMAP.md docs/*.md
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images and reference
// definitions are out of scope for this repository's docs.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlinkcheck <file.md> [...]")
		os.Exit(2)
	}
	broken := 0
	for _, path := range os.Args[1:] {
		for _, b := range checkFile(path) {
			fmt.Fprintln(os.Stderr, b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlinkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// checkFile returns one message per broken relative link in the file.
func checkFile(path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var out []string
	dir := filepath.Dir(path)
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Strip an anchor suffix; the file must still exist.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
				if target == "" {
					continue
				}
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
	}
	return out
}

// skippable reports whether a link target is out of scope: external URLs,
// mail links and bare in-page anchors.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
