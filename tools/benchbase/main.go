// Command benchbase measures the replay-path benchmarks outside the go test
// harness and records them in BENCH_results.json, so every PR leaves a
// committed performance trajectory instead of folklore. It covers the four
// benchmarks the performance work is gated on: single-cluster replay
// throughput, big.LITTLE replay throughput, the thermal pipeline replay, and
// the full single-dataset evaluation matrix.
//
// Usage:
//
//	benchbase [-o BENCH_results.json] [-label "PR N short description"]
//
// The tool appends one labelled entry to the file's history (creating the
// file if needed), keeping earlier entries untouched — compare the latest
// entry against its predecessors to see whether a change helped. Metrics are
// ns/op, allocs/op, B/op and, for the replay benches, simulated seconds per
// wall second.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiment"
	"repro/internal/governor"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimSPerWallS float64 `json:"sim_s_per_wall_s,omitempty"`
	Iterations   int     `json:"iterations"`
}

// Entry is one labelled benchmark session.
type Entry struct {
	Label   string             `json:"label"`
	Go      string             `json:"go"`
	Benches map[string]Metrics `json:"benches"`
}

// File is the BENCH_results.json schema.
type File struct {
	Comment string  `json:"_comment"`
	History []Entry `json:"history"`
}

const fileComment = "Replay-path benchmark trajectory; append entries with `go run ./tools/benchbase -label \"...\"`. See docs/performance.md."

func main() {
	out := flag.String("o", "BENCH_results.json", "results file to append to")
	label := flag.String("label", "", "label for this entry (required)")
	flag.Parse()
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchbase: -label is required (e.g. -label \"PR 5 idle states\")")
		os.Exit(1)
	}

	entry := Entry{Label: *label, Go: runtime.Version(), Benches: map[string]Metrics{}}
	for _, b := range []struct {
		name string
		run  func() (testing.BenchmarkResult, float64)
	}{
		{"ReplayThroughput", benchReplayThroughput},
		{"BigLittleReplay", benchBigLittleReplay},
		{"ThermalReplay", benchThermalReplay},
		{"EvaluationMatrix", benchEvaluationMatrix},
	} {
		fmt.Fprintf(os.Stderr, "benchbase: running %s...\n", b.name)
		r, simSPerWallS := b.run()
		entry.Benches[b.name] = Metrics{
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			SimSPerWallS: simSPerWallS,
			Iterations:   r.N,
		}
		fmt.Fprintf(os.Stderr, "benchbase: %s: %d ns/op, %d allocs/op, %.0f sim-s/wall-s\n",
			b.name, r.NsPerOp(), r.AllocsPerOp(), simSPerWallS)
	}

	f, err := appendEntry(*out, entry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbase:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchbase: %s now holds %d entries\n", *out, len(f.History))
}

// appendEntry loads path (if present), appends entry and writes it back.
func appendEntry(path string, entry Entry) (*File, error) {
	f := &File{Comment: fileComment}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, f); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f.Comment = fileComment
	f.History = append(f.History, entry)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return f, os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchReplayThroughput mirrors BenchmarkReplayThroughput: the first dataset
// replayed under ondemand with video capture.
func benchReplayThroughput() (testing.BenchmarkResult, float64) {
	w := workload.Datasets()[0]
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.Replay(w, rec, governor.NewOndemand(), "ondemand", uint64(i), true)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchBigLittleReplay mirrors BenchmarkBigLittleReplay: the quickstart
// workload on the 4+4 big.LITTLE spec under per-cluster stock governors.
func benchBigLittleReplay() (testing.BenchmarkResult, float64) {
	w := workload.Quickstart()
	w.Profile.SoC = soc.BigLittle44()
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "interactive", uint64(i), false)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchThermalReplay mirrors BenchmarkThermalReplay: the sustained export
// marathon with thermal zones and a binding trip.
func benchThermalReplay() (testing.BenchmarkResult, float64) {
	w := workload.ExportMarathon()
	w.Profile.SoC = soc.BigLittle44()
	w.Profile.Thermal = thermal.PhoneConfig(2, 30, 5)
	model, err := w.Profile.SoC.Calibrate(0)
	if err != nil {
		fatal(err)
	}
	w.Profile.ThermalPower = model
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "interactive", uint64(i), false)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchEvaluationMatrix mirrors BenchmarkEvaluationMatrix: record, annotate,
// 17 configurations x 2 reps, oracle — for one dataset.
func benchEvaluationMatrix() (testing.BenchmarkResult, float64) {
	model, err := power.Calibrate(power.Snapdragon8074(), power.DefaultSilicon(), 100*sim.Millisecond)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunDataset(workload.Dataset02(), model, experiment.Options{Reps: 2, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbase:", err)
	os.Exit(1)
}
