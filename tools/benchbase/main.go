// Command benchbase measures the replay-path benchmarks outside the go test
// harness and records them in BENCH_results.json, so every PR leaves a
// committed performance trajectory instead of folklore. It covers the four
// benchmarks the performance work is gated on: single-cluster replay
// throughput, big.LITTLE replay throughput, the thermal pipeline replay, and
// the full single-dataset evaluation matrix.
//
// Usage:
//
//	benchbase [-o BENCH_results.json] [-label "PR N short description"]
//	benchbase -compare [-against BENCH_results.json] [-threshold 0.15] \
//	          [-benches ReplayThroughput,EvaluationMatrix] [-reps 3]
//
// In record mode the tool appends one labelled entry to the file's history
// (creating the file if needed), keeping earlier entries untouched — compare
// the latest entry against its predecessors to see whether a change helped.
// Metrics are ns/op, allocs/op, B/op and, for the replay benches, simulated
// seconds per wall second.
//
// In -compare mode (the CI bench-regression gate) the tool re-runs the named
// benchmarks -reps times each (default 3), takes the per-metric median, and
// fails (exit 1) if any metric regresses more than the threshold against the
// most recent committed entry that measured it: ns/op and allocs/op may each
// grow at most threshold×, and sim-s/wall-s — gated separately because
// throughput regressions can hide behind alloc-neutral changes — may shrink
// at most threshold×. Allocation counts are deterministic; wall time on
// shared runners is noisy, which is why the comparison uses medians, the
// default threshold is a generous 15% and the gate covers only the two
// benches whose regressions have bitten before.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/governor"
	"repro/internal/population"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Metrics is one benchmark's measurement.
type Metrics struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SimSPerWallS float64 `json:"sim_s_per_wall_s,omitempty"`
	Iterations   int     `json:"iterations"`
}

// Entry is one labelled benchmark session.
type Entry struct {
	Label   string             `json:"label"`
	Go      string             `json:"go"`
	Benches map[string]Metrics `json:"benches"`
}

// File is the BENCH_results.json schema.
type File struct {
	Comment string  `json:"_comment"`
	History []Entry `json:"history"`
}

const fileComment = "Replay-path benchmark trajectory; append entries with `go run ./tools/benchbase -label \"...\"`. See docs/performance.md."

// bench is one named measurable benchmark.
type bench struct {
	name string
	run  func() (testing.BenchmarkResult, float64)
}

// allBenches lists the committed benchmarks in trajectory order.
var allBenches = []bench{
	{"ReplayThroughput", benchReplayThroughput},
	{"BigLittleReplay", benchBigLittleReplay},
	{"ThermalReplay", benchThermalReplay},
	{"EvaluationMatrix", benchEvaluationMatrix},
	{"PopulationSweep", benchPopulationSweep},
}

func main() {
	out := flag.String("o", "BENCH_results.json", "results file to append to")
	label := flag.String("label", "", "label for this entry (required unless -compare)")
	compareMode := flag.Bool("compare", false, "regression gate: re-run benchmarks and fail if they regress against the committed baseline")
	against := flag.String("against", "BENCH_results.json", "baseline file for -compare")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional regression per metric in -compare (0.15 = 15%)")
	benches := flag.String("benches", "ReplayThroughput,EvaluationMatrix", "comma-separated benchmarks to run in -compare")
	reps := flag.Int("reps", 3, "runs per benchmark in -compare; the per-metric median is compared")
	flag.Parse()
	if *compareMode {
		os.Exit(runCompare(*against, *benches, *threshold, *reps))
	}
	if *label == "" {
		fmt.Fprintln(os.Stderr, "benchbase: -label is required (e.g. -label \"PR 5 idle states\")")
		os.Exit(1)
	}

	entry := Entry{Label: *label, Go: runtime.Version(), Benches: map[string]Metrics{}}
	for _, b := range allBenches {
		entry.Benches[b.name] = measure(b)
	}

	f, err := appendEntry(*out, entry)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbase:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchbase: %s now holds %d entries\n", *out, len(f.History))
}

// measure runs one benchmark and reports its metrics.
func measure(b bench) Metrics {
	fmt.Fprintf(os.Stderr, "benchbase: running %s...\n", b.name)
	r, simSPerWallS := b.run()
	m := Metrics{
		NsPerOp:      r.NsPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		SimSPerWallS: simSPerWallS,
		Iterations:   r.N,
	}
	fmt.Fprintf(os.Stderr, "benchbase: %s: %d ns/op, %d allocs/op, %.0f sim-s/wall-s\n",
		b.name, m.NsPerOp, m.AllocsPerOp, m.SimSPerWallS)
	return m
}

// measureMedian runs one benchmark reps times and reports the per-metric
// median. Medians are taken metric-by-metric (the median-ns/op run need not
// be the median-throughput run): each metric's gate should see that metric's
// central value, not whichever metrics happened to share a run with it.
func measureMedian(b bench, reps int) Metrics {
	if reps < 1 {
		reps = 1
	}
	runs := make([]Metrics, reps)
	for i := range runs {
		runs[i] = measure(b)
	}
	med := Metrics{
		NsPerOp:      medianInt64(runs, func(m Metrics) int64 { return m.NsPerOp }),
		AllocsPerOp:  medianInt64(runs, func(m Metrics) int64 { return m.AllocsPerOp }),
		BytesPerOp:   medianInt64(runs, func(m Metrics) int64 { return m.BytesPerOp }),
		SimSPerWallS: medianFloat64(runs, func(m Metrics) float64 { return m.SimSPerWallS }),
		Iterations:   runs[0].Iterations,
	}
	if reps > 1 {
		fmt.Fprintf(os.Stderr, "benchbase: %s median of %d: %d ns/op, %d allocs/op, %.0f sim-s/wall-s\n",
			b.name, reps, med.NsPerOp, med.AllocsPerOp, med.SimSPerWallS)
	}
	return med
}

func medianInt64(runs []Metrics, get func(Metrics) int64) int64 {
	vs := make([]int64, len(runs))
	for i, m := range runs {
		vs[i] = get(m)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs[len(vs)/2]
}

func medianFloat64(runs []Metrics, get func(Metrics) float64) float64 {
	vs := make([]float64, len(runs))
	for i, m := range runs {
		vs[i] = get(m)
	}
	sort.Float64s(vs)
	return vs[len(vs)/2]
}

// runCompare is the bench-regression gate: re-measure the selected
// benchmarks (median of reps runs each) and compare each against the most
// recent baseline entry that recorded it. Returns the process exit code.
func runCompare(path, names string, threshold float64, reps int) int {
	f := &File{}
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchbase:", err)
		return 1
	}
	if err := json.Unmarshal(data, f); err != nil {
		fmt.Fprintf(os.Stderr, "benchbase: parse %s: %v\n", path, err)
		return 1
	}
	var failures []string
	for _, want := range strings.Split(names, ",") {
		want = strings.TrimSpace(want)
		if want == "" {
			continue
		}
		var b *bench
		for i := range allBenches {
			if allBenches[i].name == want {
				b = &allBenches[i]
				break
			}
		}
		if b == nil {
			fmt.Fprintf(os.Stderr, "benchbase: unknown benchmark %q\n", want)
			return 1
		}
		base, label, ok := latestBaseline(f, want)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchbase: %s: no baseline in %s, skipping\n", want, path)
			continue
		}
		cur := measureMedian(*b, reps)
		regs := regressions(want, base, cur, threshold)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "benchbase: REGRESSION vs %q: %s\n", label, r)
		}
		failures = append(failures, regs...)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchbase: %d metric(s) regressed more than %.0f%%\n",
			len(failures), threshold*100)
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchbase: no regressions beyond the threshold")
	return 0
}

// latestBaseline returns the newest history entry measuring the benchmark.
func latestBaseline(f *File, name string) (Metrics, string, bool) {
	for i := len(f.History) - 1; i >= 0; i-- {
		if m, ok := f.History[i].Benches[name]; ok {
			return m, f.History[i].Label, true
		}
	}
	return Metrics{}, "", false
}

// regressions compares one benchmark's current metrics against its baseline
// and describes every metric that moved beyond the threshold in the bad
// direction: ns/op and allocs/op may grow at most threshold×, and
// sim-s/wall-s — the replay benches' end-to-end throughput, which an
// alloc-neutral ns/op-noisy change can erode unnoticed — may shrink at most
// threshold×. B/op is a derived view of allocs/op and would only
// double-report. A zero allocs/op baseline admits no growth at all — the
// repo's allocation work drives benches to 0 allocs/op, and a threshold
// scaled from zero would otherwise disable that gate permanently. Benches
// that do not report throughput (sim-s/wall-s 0, e.g. EvaluationMatrix)
// skip the throughput gate.
func regressions(name string, base, cur Metrics, threshold float64) []string {
	var out []string
	check := func(metric string, baseV, curV int64) {
		if baseV < 0 {
			return
		}
		if baseV == 0 {
			if curV > 0 {
				out = append(out, fmt.Sprintf("%s %s: %d, baseline is 0 (zero-%s benches admit no growth)",
					name, metric, curV, metric))
			}
			return
		}
		limit := float64(baseV) * (1 + threshold)
		if float64(curV) > limit {
			out = append(out, fmt.Sprintf("%s %s: %d > %d allowed (baseline %d, +%.0f%%)",
				name, metric, curV, int64(limit), baseV, 100*(float64(curV)/float64(baseV)-1)))
		}
	}
	check("ns/op", base.NsPerOp, cur.NsPerOp)
	check("allocs/op", base.AllocsPerOp, cur.AllocsPerOp)
	if base.SimSPerWallS > 0 && cur.SimSPerWallS >= 0 {
		floor := base.SimSPerWallS * (1 - threshold)
		if cur.SimSPerWallS < floor {
			out = append(out, fmt.Sprintf("%s sim-s/wall-s: %.0f < %.0f allowed (baseline %.0f, %.0f%%)",
				name, cur.SimSPerWallS, floor, base.SimSPerWallS,
				100*(cur.SimSPerWallS/base.SimSPerWallS-1)))
		}
	}
	return out
}

// appendEntry loads path (if present), appends entry and writes it back.
func appendEntry(path string, entry Entry) (*File, error) {
	f := &File{Comment: fileComment}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, f); err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	f.Comment = fileComment
	f.History = append(f.History, entry)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return f, os.WriteFile(path, append(data, '\n'), 0o644)
}

// benchReplayThroughput mirrors BenchmarkReplayThroughput: the first dataset
// replayed under ondemand with video capture.
func benchReplayThroughput() (testing.BenchmarkResult, float64) {
	w := workload.Datasets()[0]
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.Replay(w, rec, governor.NewOndemand(), "ondemand", uint64(i), true)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchBigLittleReplay mirrors BenchmarkBigLittleReplay: the quickstart
// workload on the 4+4 big.LITTLE spec under per-cluster stock governors.
func benchBigLittleReplay() (testing.BenchmarkResult, float64) {
	w := workload.Quickstart()
	w.Profile.SoC = soc.BigLittle44()
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "interactive", uint64(i), false)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchThermalReplay mirrors BenchmarkThermalReplay: the sustained export
// marathon with thermal zones and a binding trip.
func benchThermalReplay() (testing.BenchmarkResult, float64) {
	w := workload.ExportMarathon()
	w.Profile.SoC = soc.BigLittle44()
	w.Profile.Thermal = thermal.PhoneConfig(2, 30, 5)
	model, err := w.Profile.SoC.Calibrate(0)
	if err != nil {
		fatal(err)
	}
	w.Profile.ThermalPower = model
	rec, _, err := w.Record(1)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			workload.ReplayMulti(w, rec, workload.StockGovernors(w.Profile), "interactive", uint64(i), false)
		}
	})
	return r, rec.RunWindow().Seconds() * float64(r.N) / r.T.Seconds()
}

// benchEvaluationMatrix mirrors BenchmarkEvaluationMatrix: record, annotate,
// 17 configurations x 2 reps, oracle — for one dataset.
func benchEvaluationMatrix() (testing.BenchmarkResult, float64) {
	model, err := power.Calibrate(power.Snapdragon8074(), power.DefaultSilicon(), 100*sim.Millisecond)
	if err != nil {
		fatal(err)
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.RunDataset(workload.Dataset02(), model, experiment.Options{Reps: 2, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	return r, 0
}

// benchPopulationSweep mirrors BenchmarkPopulationSweep: a 4-unit Monte
// Carlo fleet (default perturbation model, record-only thermal zones) swept
// through two configs. Its allocs/op gate backs the population sweep's
// flat-memory contract.
func benchPopulationSweep() (testing.BenchmarkResult, float64) {
	w := workload.Quickstart()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiment.RunPopulation(w, soc.Dragonboard(), experiment.PopulationOptions{
				Options:     experiment.Options{Reps: 1, Seed: 1, Configs: []string{"2.15 GHz", "ondemand"}},
				Units:       4,
				Model:       population.DefaultModel(),
				BaseThermal: thermal.PhoneConfig(1, 0, 0),
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Runs != 8 {
				b.Fatalf("folded %d runs, want 8", res.Runs)
			}
		}
	})
	return r, 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbase:", err)
	os.Exit(1)
}
