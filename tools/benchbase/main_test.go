package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendEntryRoundTrip checks the trajectory file accumulates entries
// without disturbing earlier ones.
func TestAppendEntryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	e1 := Entry{Label: "first", Go: "go1.x", Benches: map[string]Metrics{
		"ReplayThroughput": {NsPerOp: 100, AllocsPerOp: 5, SimSPerWallS: 123, Iterations: 10},
	}}
	if _, err := appendEntry(path, e1); err != nil {
		t.Fatal(err)
	}
	e2 := Entry{Label: "second", Go: "go1.x", Benches: map[string]Metrics{
		"ReplayThroughput": {NsPerOp: 50, AllocsPerOp: 1, SimSPerWallS: 246, Iterations: 20},
	}}
	f, err := appendEntry(path, e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.History) != 2 || f.History[0].Label != "first" || f.History[1].Label != "second" {
		t.Fatalf("history wrong: %+v", f.History)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.History) != 2 || back.History[0].Benches["ReplayThroughput"].SimSPerWallS != 123 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Comment == "" {
		t.Fatal("comment header missing")
	}
}

// TestAppendEntryRejectsGarbage checks a corrupt file errors instead of
// being silently overwritten.
func TestAppendEntryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendEntry(path, Entry{Label: "x"}); err == nil {
		t.Fatal("corrupt file accepted")
	}
}
