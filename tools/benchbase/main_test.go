package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestAppendEntryRoundTrip checks the trajectory file accumulates entries
// without disturbing earlier ones.
func TestAppendEntryRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	e1 := Entry{Label: "first", Go: "go1.x", Benches: map[string]Metrics{
		"ReplayThroughput": {NsPerOp: 100, AllocsPerOp: 5, SimSPerWallS: 123, Iterations: 10},
	}}
	if _, err := appendEntry(path, e1); err != nil {
		t.Fatal(err)
	}
	e2 := Entry{Label: "second", Go: "go1.x", Benches: map[string]Metrics{
		"ReplayThroughput": {NsPerOp: 50, AllocsPerOp: 1, SimSPerWallS: 246, Iterations: 20},
	}}
	f, err := appendEntry(path, e2)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.History) != 2 || f.History[0].Label != "first" || f.History[1].Label != "second" {
		t.Fatalf("history wrong: %+v", f.History)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.History) != 2 || back.History[0].Benches["ReplayThroughput"].SimSPerWallS != 123 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Comment == "" {
		t.Fatal("comment header missing")
	}
}

// TestAppendEntryRejectsGarbage checks a corrupt file errors instead of
// being silently overwritten.
func TestAppendEntryRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendEntry(path, Entry{Label: "x"}); err == nil {
		t.Fatal("corrupt file accepted")
	}
}

// TestRegressions pins the compare-mode gate rule: ns/op and allocs/op may
// each grow at most threshold×; improvements and within-threshold noise
// pass; a zero baseline metric never divides.
func TestRegressions(t *testing.T) {
	base := Metrics{NsPerOp: 1000, AllocsPerOp: 100}
	cases := []struct {
		name string
		cur  Metrics
		want int
	}{
		{"identical", Metrics{NsPerOp: 1000, AllocsPerOp: 100}, 0},
		{"improved", Metrics{NsPerOp: 500, AllocsPerOp: 10}, 0},
		{"within threshold", Metrics{NsPerOp: 1140, AllocsPerOp: 114}, 0},
		{"time regressed", Metrics{NsPerOp: 1200, AllocsPerOp: 100}, 1},
		{"allocs regressed", Metrics{NsPerOp: 1000, AllocsPerOp: 120}, 1},
		{"both regressed", Metrics{NsPerOp: 2000, AllocsPerOp: 200}, 2},
	}
	for _, c := range cases {
		if got := regressions("Bench", base, c.cur, 0.15); len(got) != c.want {
			t.Errorf("%s: %d regressions (%v), want %d", c.name, len(got), got, c.want)
		}
	}
	// A zero baseline admits no growth: a bench driven to 0 allocs/op must
	// not have its allocation gate silently disabled.
	if got := regressions("Bench", Metrics{NsPerOp: 1000}, Metrics{NsPerOp: 1000, AllocsPerOp: 5000}, 0.15); len(got) != 1 {
		t.Errorf("zero-alloc baseline regression missed: %v", got)
	}
	if got := regressions("Bench", Metrics{NsPerOp: 1000}, Metrics{NsPerOp: 1000}, 0.15); len(got) != 0 {
		t.Errorf("zero-alloc baseline flagged a still-zero run: %v", got)
	}
}

// TestLatestBaseline checks compare mode reads the newest entry that
// measured the benchmark, skipping newer entries that did not.
func TestLatestBaseline(t *testing.T) {
	f := &File{History: []Entry{
		{Label: "old", Benches: map[string]Metrics{"A": {NsPerOp: 1}, "B": {NsPerOp: 10}}},
		{Label: "new", Benches: map[string]Metrics{"A": {NsPerOp: 2}}},
	}}
	if m, label, ok := latestBaseline(f, "A"); !ok || label != "new" || m.NsPerOp != 2 {
		t.Errorf("A baseline = (%+v, %q, %v), want newest", m, label, ok)
	}
	if m, label, ok := latestBaseline(f, "B"); !ok || label != "old" || m.NsPerOp != 10 {
		t.Errorf("B baseline = (%+v, %q, %v), want the older entry", m, label, ok)
	}
	if _, _, ok := latestBaseline(f, "C"); ok {
		t.Error("missing benchmark produced a baseline")
	}
}
